#pragma once

/// @file checkpoint.hpp
/// Crash-safe checkpoint/resume for campaign runs.
///
/// An hour-long paper-scale campaign (Table IV: 20,160 simulations) that
/// dies at 90% used to lose everything. This layer persists each completed
/// kCampaignChunk-sized chunk to an append-only file so a killed run can be
/// resumed, and the resumed run's final Aggregate (or result vector) is
/// **bit-identical** to an uninterrupted run — including the Welford
/// floating-point moments — at any thread count.
///
/// ## File format (version 2)
///
/// Line-oriented ASCII. Every line is `<payload> crc=<hex16>` where the crc
/// is FNV-1a 64 of the payload (everything before " crc="). Line 1 is the
/// header:
///
///   scaa-checkpoint format=2 mode=<agg|results> fingerprint=<hex16>
///       items=<n> chunks=<n> chunk_size=<n>            (one line)
///
/// Every following line is one committed chunk, appended with a single
/// write(2) followed by fsync(2), in completion order (not chunk order):
///
///   mode=agg:     chunk=<idx> sims=... alerts=... hazards=... accidents=...
///                 noalert=... fcw=... inv=<rs> tth=<rs>
///   mode=results: chunk=<idx> n=<count> <item>;<item>;...
///
/// `<rs>` is a RunningStats snapshot `n:mean:m2:min:max` and `<item>` a
/// SimulationSummary, both with every double rendered as its raw IEEE-754
/// bit pattern in fixed 16-digit hex (util::double_bits) — decimal
/// formatting would round and break the bit-identical guarantee.
///
/// ## Fingerprint rules
///
/// The header fingerprint is FNV-1a over the format version, kCampaignChunk,
/// the item count, and every field of every CampaignItem (doubles as bit
/// patterns; an attached FaultPlan contributes its own digest). A
/// checkpoint therefore only ever resumes the *exact* grid it was started
/// for: a different strategy, seed, repetition count, grid order, chunk
/// size, fault plan, or file-format revision all change the fingerprint
/// and are rejected with CheckpointError. Bump kCheckpointFormatVersion on
/// any change to the record layout *or* to simulation semantics that makes
/// old partial results unsound to merge with new ones.
///
/// ## Crash tolerance vs. corruption
///
/// A crash can tear at most the final append, so on load a malformed or
/// checksum-failing *last* line is tolerated (that chunk is simply
/// recomputed). A bad line anywhere *before* the last, a header mismatch,
/// an out-of-range or duplicate chunk index, or a chunk whose sample count
/// disagrees with the grid is real corruption and raises CheckpointError —
/// silently merging doubtful state would be worse than rerunning.
///
/// Each open checkpoint holds an exclusive advisory flock(2) on its file
/// for its lifetime, so a retry loop that restarts the campaign while the
/// previous process is still running fails cleanly instead of interleaving
/// appends from two writers.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/campaign.hpp"

namespace scaa::exp {

/// Raised on checkpoint corruption, fingerprint/format mismatch, refusal to
/// clobber an existing file, or an I/O failure while committing.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bump on any serialized-layout or simulation-semantics change (see file
/// comment); folded into every fingerprint, so old files are rejected.
/// v2: SimulationSummary gained the per-kind fault counters and
/// CampaignItem an optional FaultPlan (both serialized).
inline constexpr std::uint32_t kCheckpointFormatVersion = 2;

/// Fingerprint of a campaign grid: FNV-1a over the format version, chunk
/// size, item count, and every CampaignItem field (doubles as bit
/// patterns). Two grids fingerprint equal iff a checkpoint of one is valid
/// for the other.
std::uint64_t grid_fingerprint(const std::vector<CampaignItem>& items);

/// Checkpoint for run_campaign_streaming: persists one
/// AggregateAccumulatorRecord per completed chunk.
///
/// Construction with resume=false starts a fresh file and throws
/// CheckpointError if @p path already holds data (refusing to silently
/// clobber a previous run); resume=true loads and validates an existing
/// file, or starts fresh when none exists — so crash-restart loops can
/// always pass resume=true. commit() is thread-safe (the runners call it
/// from worker threads).
class CampaignCheckpoint {
 public:
  CampaignCheckpoint(std::string path, const std::vector<CampaignItem>& items,
                     bool resume);
  ~CampaignCheckpoint();

  CampaignCheckpoint(const CampaignCheckpoint&) = delete;
  CampaignCheckpoint& operator=(const CampaignCheckpoint&) = delete;

  /// Total chunks in the grid this checkpoint covers.
  std::size_t chunk_count() const noexcept;

  /// Chunks restored from the file at construction.
  std::size_t completed_chunks() const noexcept;

  /// Simulations covered by the restored chunks.
  std::size_t completed_items() const noexcept;

  /// True when @p chunk was restored from the file.
  bool chunk_complete(std::size_t chunk) const;

  /// The restored accumulator for a complete chunk (bit-exact).
  AggregateAccumulator restored(std::size_t chunk) const;

  /// Durably append @p chunk's accumulator (single write + fsync).
  /// Thread-safe. Throws CheckpointError on I/O failure or if the chunk is
  /// already committed.
  void commit(std::size_t chunk, const AggregateAccumulator& acc);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Read-only loader for an agg-mode checkpoint file: the merge half of the
/// sharded campaign workflow. Validates the header against @p items exactly
/// like resume does (same fingerprint/shape/format rules — every slice of a
/// sharded campaign checkpoints the FULL grid's fingerprint, each file just
/// holding its own chunks), loads every committed chunk record, and
/// tolerates a torn final line WITHOUT repairing the file (merge never
/// writes; the owning worker repairs on its next resume). The file must
/// exist — a missing slice is an error here, never silently created.
///
/// Holds the same exclusive advisory flock(2) as the writer for its
/// lifetime, so merging a slice that a live worker is still appending to
/// fails cleanly instead of folding a half-written campaign.
class CampaignCheckpointReader {
 public:
  CampaignCheckpointReader(std::string path,
                           const std::vector<CampaignItem>& items);
  ~CampaignCheckpointReader();

  CampaignCheckpointReader(const CampaignCheckpointReader&) = delete;
  CampaignCheckpointReader& operator=(const CampaignCheckpointReader&) =
      delete;

  const std::string& path() const noexcept;
  std::size_t chunk_count() const noexcept;
  std::size_t completed_chunks() const noexcept;
  std::size_t completed_items() const noexcept;
  bool chunk_complete(std::size_t chunk) const;

  /// The committed record for a complete chunk (bit-exact). Throws
  /// CheckpointError when the chunk is not in this file.
  const AggregateAccumulatorRecord& record(std::size_t chunk) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Checkpoint for the materializing run_campaign (Table V needs per-item
/// results for driver-on/off pairing): persists every SimulationSummary of
/// a completed chunk. Same framing, fingerprint, and crash-tolerance rules
/// as CampaignCheckpoint; records are bigger (one summary per item).
class ResultsCheckpoint {
 public:
  ResultsCheckpoint(std::string path, const std::vector<CampaignItem>& items,
                    bool resume);
  ~ResultsCheckpoint();

  ResultsCheckpoint(const ResultsCheckpoint&) = delete;
  ResultsCheckpoint& operator=(const ResultsCheckpoint&) = delete;

  std::size_t chunk_count() const noexcept;
  std::size_t completed_chunks() const noexcept;
  std::size_t completed_items() const noexcept;
  bool chunk_complete(std::size_t chunk) const;

  /// Copy every restored summary into its slot of @p results (which must
  /// already be grid-sized); untouched slots belong to incomplete chunks.
  void restore_into(std::vector<CampaignResult>& results) const;

  /// Durably append the @p count results of @p chunk (they must be that
  /// chunk's slice of the grid-ordered result vector). Thread-safe.
  void commit(std::size_t chunk, const CampaignResult* results,
              std::size_t count);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace scaa::exp
