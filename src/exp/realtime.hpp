#pragma once

/// @file realtime.hpp
/// Real-time executor: pin the 100 Hz simulation tick to an absolute
/// deadline clock and account for where each tick's budget goes.
///
/// Campaigns run free-running (as fast as the hardware allows); this
/// executor answers the deployment question the paper leaves open — does
/// the detection pipeline fit a real ECU tick budget? — by stepping one
/// World at its configured rate against util::DeadlineClock and recording
/// per-subsystem latency, wake jitter, and overrun histograms.
///
/// Determinism: the executor drives the exact phase sequence World::step()
/// runs (begin_tick -> projection sweep -> mid_tick -> projection sweep ->
/// end_tick) and feeds no clock value into any of them. The wall clock
/// only decides *when* the next tick fires, never what it computes, so a
/// realtime run's SimulationSummary is bit-identical to a free-running
/// run() on the same config and seed (enforced by the Realtime test
/// suite).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "msg/bus.hpp"
#include "sim/world.hpp"
#include "util/proc.hpp"
#include "util/stats.hpp"

namespace scaa::exp {

/// Knobs for one realtime run.
struct RealtimeConfig {
  double period_s = 0.01;  ///< tick deadline period (paper rig: 100 Hz)

  /// Test fault-injection hook: runs inside the measured tick, after the
  /// simulation phases. A hook that burns more than one period makes every
  /// tick overrun — the overrun-monotonicity tests inject exactly that.
  std::function<void()> slow_tick_hook;
};

/// Latency accounting for one instrumented subsystem: streaming stats in
/// seconds plus a fixed-width histogram in microseconds.
struct PhaseStats {
  /// @p hi_us is the histogram's upper edge; samples above it clamp into
  /// the last bin (so the top bin reads "at or beyond this budget").
  PhaseStats(std::string name, double hi_us);

  void add(double seconds);

  std::string name;
  util::RunningStats latency_s;
  util::Histogram hist_us;
};

/// Everything one realtime run produced. `summary` is the deterministic
/// part (bit-identical to free-running); the rest is wall-clock-derived
/// and varies run to run by nature.
struct RealtimeReport {
  sim::SimulationSummary summary;
  std::size_t ticks = 0;
  std::size_t overruns = 0;     ///< ticks whose work missed the deadline
  util::RunningStats wake_error_s;  ///< deadline-clock wake jitter
  double period_s = 0.01;

  /// phases[0] is the whole tick; the rest decompose it along the
  /// World::step phase boundaries: "sense_publish" (sensor models + bus
  /// publish), "project_sweep" (both batched Polyline::project_many
  /// resolutions), "adas_plan" (ADAS planners, controls, actuation),
  /// "monitor" (hazard/safety monitoring).
  std::vector<PhaseStats> phases;

  /// Fraction of ticks that overran; 0 when no tick ran.
  double miss_fraction() const noexcept {
    return ticks == 0 ? 0.0
                      : static_cast<double>(overruns) /
                            static_cast<double>(ticks);
  }
};

/// Runs @p world to completion under the deadline clock. Like World::run(),
/// consumes the world (throws std::logic_error if it already ran; reset()
/// re-arms it). Throws std::invalid_argument on a non-positive period.
class RealtimeExecutor {
 public:
  static RealtimeReport run(sim::World& world, const RealtimeConfig& config);
};

/// Convenience free-function spelling of RealtimeExecutor::run.
inline RealtimeReport run_realtime(sim::World& world,
                                   const RealtimeConfig& config) {
  return RealtimeExecutor::run(world, config);
}

/// Append one tap frame to @p out: little-endian
/// [u16 topic][u64 sequence][u32 payload length][payload bytes].
/// The single framing definition shared by FifoTap and the byte-identity
/// oracle in tests, so the two cannot drift apart.
void append_tap_frame(std::vector<std::uint8_t>& out,
                      const msg::WireFrame& frame);

/// FIFO/socket bridge for the paper's eavesdropper: subscribes to the raw
/// wire path of every topic on a bus and streams each WireFrame over a
/// file descriptor, framed by append_tap_frame. External tools observe a
/// running simulation exactly like an in-process raw tap — the bytes are
/// the same lazily-serialized frames msg::MessageLog records.
///
/// The constructor mkfifo(3)s @p path when it does not exist (an existing
/// FIFO, file, or bound socket path is used as-is) and opens it for
/// writing — which, for a FIFO, blocks until a reader opens the other end:
/// start the consumer first. SIGPIPE is ignored process-wide so a reader
/// hanging up cannot kill the simulation; the tap logs the error once and
/// stops streaming instead (broken() reports it).
class FifoTap {
 public:
  FifoTap(msg::PubSubBus& bus, const std::string& path);
  ~FifoTap();

  FifoTap(const FifoTap&) = delete;
  FifoTap& operator=(const FifoTap&) = delete;

  /// Frames successfully written so far.
  std::uint64_t frames_streamed() const noexcept { return frames_; }

  /// True once a write failed; no further frames are streamed.
  bool broken() const noexcept { return broken_; }

  /// Re-arm for a new run on the same FIFO: the frame counter restarts and
  /// the broken-pipe latch clears, so the warn-once log fires again if the
  /// (possibly new) reader hangs up too. Call alongside World::reset() —
  /// without this, the second leased run in an arena would silently stay
  /// muted after one EPIPE. The fd and subscriptions stay attached (the
  /// tap is wiring, like every other bus attachment).
  void reset() noexcept {
    frames_ = 0;
    broken_ = false;
  }

 private:
  void write_frame(const msg::WireFrame& frame);

  msg::PubSubBus* bus_;
  std::vector<std::uint64_t> subscriptions_;
  util::UniqueFd fd_;
  std::vector<std::uint8_t> scratch_;
  std::uint64_t frames_ = 0;
  bool broken_ = false;
};

}  // namespace scaa::exp
