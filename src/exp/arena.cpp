#include "exp/arena.hpp"

#include <algorithm>

namespace scaa::exp {

void WorldArena::run_items(std::span<const CampaignItem> items,
                           const WorldAssets& assets,
                           std::span<sim::SimulationSummary> out) {
  for (std::size_t begin = 0; begin < items.size(); begin += kBatchWorlds) {
    const std::size_t end = std::min(items.size(), begin + kBatchWorlds);
    batch_.clear();
    for (std::size_t j = 0; begin + j < end; ++j) {
      sim::WorldConfig cfg = world_config_for(items[begin + j], assets);
      if (j < worlds_.size()) {
        worlds_[j]->reset(cfg);
      } else {
        worlds_.push_back(std::make_unique<sim::World>(std::move(cfg)));
      }
      batch_.add(worlds_[j].get());
    }
    batch_.run_all();
    for (std::size_t j = 0; begin + j < end; ++j)
      out[begin + j] = worlds_[j]->summarize();
  }
}

std::unique_ptr<WorldArena> ArenaPool::acquire() {
  {
    const util::MutexLock lock(mutex_);
    if (!free_.empty()) {
      std::unique_ptr<WorldArena> arena = std::move(free_.back());
      free_.pop_back();
      return arena;
    }
  }
  return std::make_unique<WorldArena>();
}

void ArenaPool::release(std::unique_ptr<WorldArena> arena) {
  const util::MutexLock lock(mutex_);
  free_.push_back(std::move(arena));
}

}  // namespace scaa::exp
