#include "exp/shard.hpp"

#include <memory>
#include <stdexcept>

#include "exp/checkpoint.hpp"
#include "util/serial.hpp"

namespace scaa::exp {

ShardPlan::ShardPlan(std::size_t n_items, std::size_t n_shards)
    : n_items_(n_items),
      n_chunks_((n_items + kCampaignChunk - 1) / kCampaignChunk),
      n_shards_(n_shards) {
  if (n_shards == 0)
    throw std::invalid_argument("ShardPlan: shard count must be >= 1");
}

ChunkRange ShardPlan::chunks_for(std::size_t shard) const {
  if (shard >= n_shards_)
    throw std::invalid_argument("ShardPlan: shard index out of range");
  // Balanced contiguous split: floor(s*C/N) boundaries give every shard
  // either floor(C/N) or ceil(C/N) chunks and cover [0, C) exactly, for any
  // N — including N > C, where the tail shards get empty ranges.
  ChunkRange range;
  range.begin_chunk = shard * n_chunks_ / n_shards_;
  range.end_chunk = (shard + 1) * n_chunks_ / n_shards_;
  return range;
}

std::size_t ShardPlan::items_in(std::size_t shard) const {
  const ChunkRange range = chunks_for(shard);
  const std::size_t begin = range.begin_chunk * kCampaignChunk;
  const std::size_t end =
      std::min(n_items_, range.end_chunk * kCampaignChunk);
  return end > begin ? end - begin : 0;
}

std::string short_fingerprint(std::uint64_t fingerprint) {
  return util::hex_u64(fingerprint).substr(0, 8);
}

std::string shard_suffix(std::size_t shard, std::size_t n_shards) {
  if (n_shards <= 1) return "";
  return ".s" + std::to_string(shard + 1) + "of" + std::to_string(n_shards);
}

Aggregate merge_slice_files(const std::vector<CampaignItem>& items,
                            const std::vector<std::string>& slice_paths) {
  const std::size_t n_chunks =
      (items.size() + kCampaignChunk - 1) / kCampaignChunk;

  // Load every slice first (each reader validates fingerprint/shape/records
  // and holds the file's flock until the merge completes), then check the
  // chunk sets partition [0, n_chunks) before folding anything: coverage
  // errors should name files, not surface as a half-merged aggregate.
  std::vector<std::unique_ptr<CampaignCheckpointReader>> readers;
  readers.reserve(slice_paths.size());
  std::vector<const CampaignCheckpointReader*> owner(n_chunks, nullptr);
  for (const std::string& path : slice_paths) {
    readers.push_back(
        std::make_unique<CampaignCheckpointReader>(path, items));
    const CampaignCheckpointReader& reader = *readers.back();
    for (std::size_t c = 0; c < n_chunks; ++c) {
      if (!reader.chunk_complete(c)) continue;
      if (owner[c] != nullptr)
        throw CheckpointError(
            "merge: chunk " + std::to_string(c) + " appears in both '" +
            owner[c]->path() + "' and '" + reader.path() +
            "' — duplicate or overlapping slices; each chunk must be "
            "committed by exactly one slice file");
      owner[c] = &reader;
    }
  }

  std::size_t missing = 0;
  std::string missing_list;
  for (std::size_t c = 0; c < n_chunks; ++c) {
    if (owner[c] != nullptr) continue;
    ++missing;
    if (missing <= 8) {
      if (!missing_list.empty()) missing_list += ", ";
      missing_list += std::to_string(c);
    }
  }
  if (missing > 0) {
    if (missing > 8) missing_list += ", ...";
    throw CheckpointError(
        "merge: " + std::to_string(missing) + " of " +
        std::to_string(n_chunks) + " chunks missing (chunks " + missing_list +
        ") — a worker was killed or never ran; re-dispatch its shard with "
        "--resume to complete the slice, then merge again");
  }

  // The exact single-process reduction: one record per chunk, folded in
  // global chunk order. Which file a record came from is irrelevant.
  AggregateAccumulator total;
  for (std::size_t c = 0; c < n_chunks; ++c)
    total.merge(AggregateAccumulator::from_record(owner[c]->record(c)));
  return total.finish();
}

}  // namespace scaa::exp
