#include "exp/campaign.hpp"

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace scaa::exp {

std::vector<CampaignItem> make_grid(attack::StrategyKind strategy,
                                    bool strategic_values, bool driver_enabled,
                                    int repetitions,
                                    std::uint64_t base_seed) {
  std::vector<CampaignItem> items;
  std::uint64_t counter = 0;
  for (const attack::AttackType type : attack::kAllAttackTypes) {
    for (int sid = 1; sid <= 4; ++sid) {
      for (const double gap : sim::Scenario::kGaps) {
        for (int rep = 0; rep < repetitions; ++rep) {
          CampaignItem item;
          item.strategy = strategy;
          item.type = type;
          item.strategic_values = strategic_values;
          item.driver_enabled = driver_enabled;
          item.scenario_id = sid;
          item.initial_gap = gap;
          // Seed derivation: stable across grid orderings.
          std::uint64_t mix = base_seed ^ (counter * 0x9E3779B97F4A7C15ull);
          item.seed = util::splitmix64(mix);
          ++counter;
          items.push_back(item);
        }
      }
    }
  }
  return items;
}

sim::WorldConfig world_config_for(const CampaignItem& item) {
  sim::WorldConfig cfg;
  cfg.scenario = sim::Scenario::make(item.scenario_id, item.initial_gap);
  cfg.seed = item.seed;
  cfg.driver_enabled = item.driver_enabled;
  cfg.attack_enabled = item.strategy != attack::StrategyKind::kNone;
  cfg.attack.strategy = item.strategy;
  cfg.attack.type = item.type;
  cfg.attack.strategic_values = item.strategic_values;
  return cfg;
}

std::vector<CampaignResult> run_campaign(const std::vector<CampaignItem>& items,
                                         const CampaignConfig& config) {
  std::vector<CampaignResult> results(items.size());
  ThreadPool pool(config.threads);
  for (std::size_t i = 0; i < items.size(); ++i) {
    pool.submit([&items, &results, i] {
      const CampaignItem& item = items[i];
      sim::World world(world_config_for(item));
      results[i] = CampaignResult{item, world.run()};
    });
  }
  pool.wait_idle();
  return results;
}

double Aggregate::hazard_fraction() const noexcept {
  return simulations
             ? static_cast<double>(sims_with_hazards) / static_cast<double>(simulations)
             : 0.0;
}

double Aggregate::accident_fraction() const noexcept {
  return simulations
             ? static_cast<double>(sims_with_accidents) / static_cast<double>(simulations)
             : 0.0;
}

double Aggregate::alert_fraction() const noexcept {
  return simulations
             ? static_cast<double>(sims_with_alerts) / static_cast<double>(simulations)
             : 0.0;
}

Aggregate aggregate(const std::vector<CampaignResult>& results) {
  Aggregate agg;
  util::RunningStats invasion_rate;
  util::RunningStats tth;
  for (const auto& r : results) {
    ++agg.simulations;
    const auto& s = r.summary;
    if (s.alert_events > 0) ++agg.sims_with_alerts;
    if (s.any_hazard) ++agg.sims_with_hazards;
    if (s.any_accident) ++agg.sims_with_accidents;
    if (s.any_hazard && s.alert_events == 0) ++agg.hazards_without_alerts;
    agg.fcw_activations += s.fcw_events;
    invasion_rate.add(s.lane_invasion_rate);
    if (s.tth >= 0.0) tth.add(s.tth);
  }
  agg.lane_invasion_rate_mean = invasion_rate.mean();
  agg.tth_mean = tth.mean();
  agg.tth_std = tth.stddev();
  return agg;
}

}  // namespace scaa::exp
