#include "exp/campaign.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <stdexcept>
#include <string>

#include "exp/arena.hpp"
#include "exp/checkpoint.hpp"
#include "road/builder.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_annotations.hpp"

namespace scaa::exp {

std::vector<CampaignItem> make_grid(attack::StrategyKind strategy,
                                    bool strategic_values, bool driver_enabled,
                                    const CampaignConfig& config,
                                    int repetitions) {
  // The documented fallback: an explicit positive override wins, otherwise
  // the config-level repetition count applies. Anything non-positive after
  // that would silently produce an empty grid (and empty-looking tables
  // downstream), so it is a hard error.
  if (repetitions <= 0) repetitions = config.repetitions;
  if (repetitions <= 0)
    throw std::invalid_argument(
        "make_grid: effective repetitions must be > 0, got " +
        std::to_string(repetitions) +
        " (override and CampaignConfig.repetitions are both non-positive)");
  const std::uint64_t base_seed = config.base_seed;
  std::vector<CampaignItem> items;
  std::uint64_t counter = 0;
  for (const attack::AttackType type : attack::kAllAttackTypes) {
    for (int sid = 1; sid <= 4; ++sid) {
      for (const double gap : sim::Scenario::kGaps) {
        for (int rep = 0; rep < repetitions; ++rep) {
          CampaignItem item;
          item.strategy = strategy;
          item.type = type;
          item.strategic_values = strategic_values;
          item.driver_enabled = driver_enabled;
          item.scenario_id = sid;
          item.initial_gap = gap;
          // Seed derivation: stable across grid orderings.
          std::uint64_t mix = base_seed ^ (counter * 0x9E3779B97F4A7C15ull);
          item.seed = util::splitmix64(mix);
          ++counter;
          items.push_back(item);
        }
      }
    }
  }
  return items;
}

WorldAssets WorldAssets::make_default() {
  WorldAssets assets;
  assets.road =
      std::make_shared<const road::Road>(road::RoadBuilder::paper_road());
  assets.db =
      std::make_shared<const can::Database>(can::Database::simulated_car());
  return assets;
}

sim::WorldConfig world_config_for(const CampaignItem& item) {
  sim::WorldConfig cfg;
  cfg.scenario = sim::Scenario::make(item.scenario_id, item.initial_gap);
  cfg.seed = item.seed;
  cfg.driver_enabled = item.driver_enabled;
  cfg.attack_enabled = item.strategy != attack::StrategyKind::kNone;
  cfg.attack.strategy = item.strategy;
  cfg.attack.type = item.type;
  cfg.attack.strategic_values = item.strategic_values;
  cfg.fault_plan = item.fault_plan;
  return cfg;
}

sim::WorldConfig world_config_for(const CampaignItem& item,
                                  const WorldAssets& assets) {
  sim::WorldConfig cfg = world_config_for(item);
  cfg.road = assets.road;
  cfg.db = assets.db;
  return cfg;
}

namespace {

/// Captures the first checkpoint-commit failure from a worker thread so the
/// runner can abort outstanding work and rethrow once the pool drains
/// (letting an exception escape a pool task would terminate the process).
struct CommitErrors {
  util::Mutex mutex;
  std::string first SCAA_GUARDED_BY(mutex);
  std::atomic<bool> failed{false};

  void capture(const std::exception& e) SCAA_EXCLUDES(mutex) {
    const util::MutexLock lock(mutex);
    if (first.empty()) first = e.what();
    failed.store(true, std::memory_order_release);
  }
  void rethrow_if_failed() SCAA_EXCLUDES(mutex) {
    if (!failed.load(std::memory_order_acquire)) return;
    // The pool has drained by the time this runs, but take the lock anyway:
    // `first` is guarded, and an uncontended lock costs nothing here.
    const util::MutexLock lock(mutex);
    throw CheckpointError(first);
  }
};

/// Progress bookkeeping shared by the streaming runner's workers: the
/// cumulative completed-simulation count and the user callback invocation
/// are both serialized by one mutex, so callbacks observe monotonically
/// non-decreasing counts.
struct ProgressCounter {
  util::Mutex mutex;
  std::size_t completed SCAA_GUARDED_BY(mutex) = 0;

  void start_at(std::size_t restored) SCAA_EXCLUDES(mutex) {
    const util::MutexLock lock(mutex);
    completed = restored;
  }
  void advance(std::size_t delta, std::size_t total,
               const CampaignProgressFn& progress) SCAA_EXCLUDES(mutex) {
    const util::MutexLock lock(mutex);
    completed += delta;
    progress(CampaignProgress{completed, total});
  }
};

/// Task granularity for the unchunked runner path: a couple of arena
/// batches per task, small enough to keep every worker busy on modest
/// grids, large enough that each task amortizes its arena checkout.
constexpr std::size_t kArenaTask = 2 * kBatchWorlds;

}  // namespace

std::vector<CampaignResult> run_campaign(const std::vector<CampaignItem>& items,
                                         const CampaignConfig& config,
                                         ResultsCheckpoint* checkpoint) {
  std::vector<CampaignResult> results(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) results[i].item = items[i];
  const WorldAssets assets = WorldAssets::make_default();

  // Declared before the pools so leased arenas outlive every task.
  ArenaPool arenas;

  if (checkpoint == nullptr) {
    // Small tasks (not checkpoint chunks): this path materializes
    // results[i] by index, so no reduction order is at stake, and fine
    // granularity keeps every worker busy even on small grids.
    ThreadPool pool(config.threads);
    for (std::size_t begin = 0; begin < items.size(); begin += kArenaTask) {
      const std::size_t end = std::min(items.size(), begin + kArenaTask);
      pool.submit([&items, &results, &assets, &arenas, begin, end] {
        ArenaPool::Lease lease(arenas);
        std::array<sim::SimulationSummary, kArenaTask> summaries;
        lease->run_items({items.data() + begin, end - begin}, assets,
                         {summaries.data(), end - begin});
        for (std::size_t i = begin; i < end; ++i)
          results[i].summary = summaries[i - begin];
      });
    }
    pool.wait_idle();
    return results;
  }

  // Checkpointed: chunk-sized tasks, because the chunk is the commit unit.
  // Results are still materialized by index, so granularity cannot change
  // the outcome — only how work restores and commits.
  checkpoint->restore_into(results);
  const std::size_t n_chunks =
      (items.size() + kCampaignChunk - 1) / kCampaignChunk;
  CommitErrors errors;
  {
    ThreadPool pool(config.threads);
    for (std::size_t c = 0; c < n_chunks; ++c) {
      if (checkpoint->chunk_complete(c)) continue;
      pool.submit([&items, &results, &assets, &arenas, checkpoint, &errors,
                   c] {
        if (errors.failed.load(std::memory_order_acquire)) return;
        const std::size_t begin = c * kCampaignChunk;
        const std::size_t end = std::min(items.size(), begin + kCampaignChunk);
        {
          ArenaPool::Lease lease(arenas);
          std::array<sim::SimulationSummary, kCampaignChunk> summaries;
          lease->run_items({items.data() + begin, end - begin}, assets,
                           {summaries.data(), end - begin});
          for (std::size_t i = begin; i < end; ++i)
            results[i].summary = summaries[i - begin];
        }
        try {
          checkpoint->commit(c, results.data() + begin, end - begin);
        } catch (const std::exception& e) {
          errors.capture(e);
        }
      });
    }
    pool.wait_idle();
  }
  errors.rethrow_if_failed();
  return results;
}

double Aggregate::hazard_fraction() const noexcept {
  return simulations
             ? static_cast<double>(sims_with_hazards) / static_cast<double>(simulations)
             : 0.0;
}

double Aggregate::accident_fraction() const noexcept {
  return simulations
             ? static_cast<double>(sims_with_accidents) / static_cast<double>(simulations)
             : 0.0;
}

double Aggregate::alert_fraction() const noexcept {
  return simulations
             ? static_cast<double>(sims_with_alerts) / static_cast<double>(simulations)
             : 0.0;
}

void AggregateAccumulator::add(const sim::SimulationSummary& s) {
  ++agg_.simulations;
  if (s.alert_events > 0) ++agg_.sims_with_alerts;
  if (s.any_hazard) ++agg_.sims_with_hazards;
  if (s.any_accident) ++agg_.sims_with_accidents;
  if (s.any_hazard && s.alert_events == 0) ++agg_.hazards_without_alerts;
  agg_.fcw_activations += s.fcw_events;
  invasion_rate_.add(s.lane_invasion_rate);
  if (s.tth >= 0.0) tth_.add(s.tth);
}

void AggregateAccumulator::merge(const AggregateAccumulator& other) {
  agg_.simulations += other.agg_.simulations;
  agg_.sims_with_alerts += other.agg_.sims_with_alerts;
  agg_.sims_with_hazards += other.agg_.sims_with_hazards;
  agg_.sims_with_accidents += other.agg_.sims_with_accidents;
  agg_.hazards_without_alerts += other.agg_.hazards_without_alerts;
  agg_.fcw_activations += other.agg_.fcw_activations;
  invasion_rate_.merge(other.invasion_rate_);
  tth_.merge(other.tth_);
}

Aggregate AggregateAccumulator::finish() const {
  Aggregate agg = agg_;
  agg.lane_invasion_rate_mean = invasion_rate_.mean();
  agg.tth_mean = tth_.mean();
  agg.tth_std = tth_.stddev();
  return agg;
}

AggregateAccumulatorRecord AggregateAccumulator::to_record() const noexcept {
  AggregateAccumulatorRecord record;
  record.simulations = agg_.simulations;
  record.sims_with_alerts = agg_.sims_with_alerts;
  record.sims_with_hazards = agg_.sims_with_hazards;
  record.sims_with_accidents = agg_.sims_with_accidents;
  record.hazards_without_alerts = agg_.hazards_without_alerts;
  record.fcw_activations = agg_.fcw_activations;
  record.invasion_rate = invasion_rate_.to_record();
  record.tth = tth_.to_record();
  return record;
}

AggregateAccumulator AggregateAccumulator::from_record(
    const AggregateAccumulatorRecord& record) noexcept {
  AggregateAccumulator acc;
  acc.agg_.simulations = static_cast<std::size_t>(record.simulations);
  acc.agg_.sims_with_alerts =
      static_cast<std::size_t>(record.sims_with_alerts);
  acc.agg_.sims_with_hazards =
      static_cast<std::size_t>(record.sims_with_hazards);
  acc.agg_.sims_with_accidents =
      static_cast<std::size_t>(record.sims_with_accidents);
  acc.agg_.hazards_without_alerts =
      static_cast<std::size_t>(record.hazards_without_alerts);
  acc.agg_.fcw_activations = static_cast<std::size_t>(record.fcw_activations);
  acc.invasion_rate_ = util::RunningStats::from_record(record.invasion_rate);
  acc.tth_ = util::RunningStats::from_record(record.tth);
  return acc;
}

Aggregate aggregate(const std::vector<CampaignResult>& results) {
  // Chunked exactly like run_campaign_streaming (same chunk size, same
  // within-chunk order, same chunk-order merge) so the two reductions are
  // bit-identical — including the floating-point moments.
  AggregateAccumulator total;
  for (std::size_t begin = 0; begin < results.size(); begin += kCampaignChunk) {
    const std::size_t end = std::min(results.size(), begin + kCampaignChunk);
    AggregateAccumulator chunk;
    for (std::size_t i = begin; i < end; ++i) chunk.add(results[i].summary);
    total.merge(chunk);
  }
  return total.finish();
}

Aggregate run_campaign_streaming(const std::vector<CampaignItem>& items,
                                 const CampaignConfig& config,
                                 const CampaignProgressFn& progress,
                                 CampaignCheckpoint* checkpoint,
                                 const ChunkRange* chunks) {
  const WorldAssets assets = WorldAssets::make_default();
  const std::size_t n_chunks =
      (items.size() + kCampaignChunk - 1) / kCampaignChunk;

  // The chunk range this call owns: the whole grid, or a shard's slice
  // (clamped so an oversized range is harmless).
  const std::size_t range_begin =
      chunks != nullptr ? std::min(chunks->begin_chunk, n_chunks) : 0;
  const std::size_t range_end =
      chunks != nullptr ? std::min(chunks->end_chunk, n_chunks) : n_chunks;
  const auto chunk_items = [&](std::size_t c) {
    return std::min(items.size(), (c + 1) * kCampaignChunk) -
           c * kCampaignChunk;
  };
  std::size_t range_items = 0;
  for (std::size_t c = range_begin; c < range_end; ++c)
    range_items += chunk_items(c);

  // One accumulator per chunk, padded to a cache line: each is written by
  // exactly one worker, and the padding keeps neighbouring chunks from
  // false-sharing while workers fold results in concurrently.
  struct alignas(64) PaddedAccumulator {
    AggregateAccumulator acc;
  };
  std::vector<PaddedAccumulator> partials(n_chunks);

  // Restore already-committed chunks before submitting anything: they are
  // never recomputed, and the first progress callback accounts for them.
  // Only in-range chunks count — a shard worker reports its slice alone.
  std::size_t restored = 0;
  if (checkpoint != nullptr) {
    for (std::size_t c = range_begin; c < range_end; ++c) {
      if (!checkpoint->chunk_complete(c)) continue;
      partials[c].acc = checkpoint->restored(c);
      restored += chunk_items(c);
    }
    if (progress && restored > 0)
      progress(CampaignProgress{restored, range_items});
  }

  ProgressCounter counter;
  counter.start_at(restored);
  ArenaPool arenas;
  CommitErrors errors;
  {
    ThreadPool pool(config.threads);
    for (std::size_t c = range_begin; c < range_end; ++c) {
      if (checkpoint != nullptr && checkpoint->chunk_complete(c)) continue;
      pool.submit([&items, &assets, &partials, &progress, &counter, &arenas,
                   checkpoint, &errors, c, range_items] {
        if (errors.failed.load(std::memory_order_acquire)) return;
        const std::size_t begin = c * kCampaignChunk;
        const std::size_t end =
            std::min(items.size(), begin + kCampaignChunk);
        {
          ArenaPool::Lease lease(arenas);
          std::array<sim::SimulationSummary, kCampaignChunk> summaries;
          lease->run_items({items.data() + begin, end - begin}, assets,
                           {summaries.data(), end - begin});
          // Fold in item order within the chunk — the same order the
          // sequential reduction uses.
          for (std::size_t i = begin; i < end; ++i)
            partials[c].acc.add(summaries[i - begin]);
        }
        // Commit before reporting progress: a chunk only ever counts as
        // done once it is durable.
        if (checkpoint != nullptr) {
          try {
            checkpoint->commit(c, partials[c].acc);
          } catch (const std::exception& e) {
            errors.capture(e);
            return;
          }
        }
        if (progress) counter.advance(end - begin, range_items, progress);
      });
    }
    pool.wait_idle();
  }
  errors.rethrow_if_failed();

  // Merge in chunk order: the fixed order is what makes the result
  // independent of which worker ran which chunk — and, with a checkpoint,
  // of which chunks were restored vs. freshly computed. A sliced call
  // folds only its own range, so the returned Aggregate covers exactly
  // the slice's items.
  AggregateAccumulator total;
  for (std::size_t c = range_begin; c < range_end; ++c)
    total.merge(partials[c].acc);
  return total.finish();
}

}  // namespace scaa::exp
