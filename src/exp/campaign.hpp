#pragma once

/// @file campaign.hpp
/// Batch experiment execution over the scenario x attack grid.
///
/// The paper's grid: 6 attack types x 4 scenarios x 3 initial gaps x 20
/// repetitions = 1,440 simulations per strategy (14,400 for Random-ST+DUR,
/// which uses 200 repetitions for parameter-space coverage). Each simulation
/// is a pure function of its CampaignItem, so the runner parallelizes over
/// a thread pool with bit-identical results at any thread count.

#include <cstdint>
#include <vector>

#include "exp/thread_pool.hpp"
#include "sim/world.hpp"

namespace scaa::exp {

/// One cell of the campaign grid.
struct CampaignItem {
  attack::StrategyKind strategy = attack::StrategyKind::kNone;
  attack::AttackType type = attack::AttackType::kAcceleration;
  bool strategic_values = true;
  bool driver_enabled = true;
  int scenario_id = 1;       ///< 1..4
  double initial_gap = 100;  ///< [m]
  std::uint64_t seed = 1;    ///< unique per simulation
};

/// Item + outcome.
struct CampaignResult {
  CampaignItem item;
  sim::SimulationSummary summary;
};

/// Campaign-wide knobs.
struct CampaignConfig {
  std::uint64_t base_seed = 2022;  ///< mixed into every item's seed
  int repetitions = 20;            ///< paper: 20 per (type, scenario, gap)
  std::size_t threads = 0;         ///< 0 = hardware concurrency
};

/// Build the full item grid for one strategy (paper Table III row).
/// @p repetitions overrides config-level repetitions when > 0.
std::vector<CampaignItem> make_grid(attack::StrategyKind strategy,
                                    bool strategic_values, bool driver_enabled,
                                    int repetitions,
                                    std::uint64_t base_seed);

/// Construct the WorldConfig for one item (the single place where
/// calibration defaults live — tests and benches share it).
sim::WorldConfig world_config_for(const CampaignItem& item);

/// Run every item; results are returned in item order (deterministic).
std::vector<CampaignResult> run_campaign(const std::vector<CampaignItem>& items,
                                         const CampaignConfig& config);

/// Aggregate counters over a set of results (one Table IV row).
struct Aggregate {
  std::size_t simulations = 0;
  std::size_t sims_with_alerts = 0;
  std::size_t sims_with_hazards = 0;
  std::size_t sims_with_accidents = 0;
  std::size_t hazards_without_alerts = 0;  ///< hazard and no alert at all
  std::size_t fcw_activations = 0;
  double lane_invasion_rate_mean = 0.0;
  double tth_mean = 0.0;
  double tth_std = 0.0;

  /// Fraction helpers.
  double hazard_fraction() const noexcept;
  double accident_fraction() const noexcept;
  double alert_fraction() const noexcept;
};

/// Reduce results into an Aggregate.
Aggregate aggregate(const std::vector<CampaignResult>& results);

}  // namespace scaa::exp
