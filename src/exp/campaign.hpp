#pragma once

/// @file campaign.hpp
/// Batch experiment execution over the scenario x attack grid.
///
/// The paper's grid: 6 attack types x 4 scenarios x 3 initial gaps x 20
/// repetitions = 1,440 simulations per strategy (14,400 for Random-ST+DUR,
/// which uses 200 repetitions for parameter-space coverage). Each simulation
/// is a pure function of its CampaignItem, so the runner parallelizes over
/// a thread pool with bit-identical results at any thread count.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "exp/thread_pool.hpp"
#include "sim/world.hpp"
#include "util/stats.hpp"

namespace scaa::exp {

/// One cell of the campaign grid.
struct CampaignItem {
  attack::StrategyKind strategy = attack::StrategyKind::kNone;
  attack::AttackType type = attack::AttackType::kAcceleration;
  bool strategic_values = true;
  bool driver_enabled = true;
  int scenario_id = 1;       ///< 1..4
  double initial_gap = 100;  ///< [m]
  std::uint64_t seed = 1;    ///< unique per simulation
  /// Benign-fault plan (shared, immutable; null = none — the historical
  /// grids). Part of the grid identity: folded into grid_fingerprint so
  /// resume/merge reject a checkpoint written under a different plan.
  std::shared_ptr<const fault::FaultPlan> fault_plan;
};

/// Item + outcome.
struct CampaignResult {
  CampaignItem item;
  sim::SimulationSummary summary;
};

/// Campaign-wide knobs. base_seed and repetitions feed make_grid (the grid
/// builder is the only consumer of either); threads feeds the runners.
struct CampaignConfig {
  std::uint64_t base_seed = 2022;  ///< mixed into every item's seed
  int repetitions = 20;            ///< paper: 20 per (type, scenario, gap)
  std::size_t threads = 0;         ///< 0 = hardware concurrency
};

/// Build the full item grid for one strategy (paper Table III row), seeded
/// from @p config.base_seed. @p repetitions overrides config-level
/// repetitions when > 0 (e.g. Table IV's Random-ST+DUR 10x multiplier);
/// otherwise @p config.repetitions applies. An effective repetition count
/// <= 0 would silently yield an empty grid and empty-looking tables, so it
/// throws std::invalid_argument instead.
std::vector<CampaignItem> make_grid(attack::StrategyKind strategy,
                                    bool strategic_values, bool driver_enabled,
                                    const CampaignConfig& config,
                                    int repetitions = 0);

/// Immutable per-campaign assets: the road and DBC database are identical
/// for every simulation, so campaigns build them once and share them
/// (const) across all Worlds instead of rebuilding per simulation.
struct WorldAssets {
  std::shared_ptr<const road::Road> road;
  std::shared_ptr<const can::Database> db;

  /// Build the paper's default assets (RoadBuilder::paper_road +
  /// Database::simulated_car).
  static WorldAssets make_default();
};

/// Construct the WorldConfig for one item (the single place where
/// calibration defaults live — tests and benches share it). The World
/// builds private road/DBC copies; campaigns use the sharing overload.
sim::WorldConfig world_config_for(const CampaignItem& item);

/// As above, but referencing @p assets instead of rebuilding them.
sim::WorldConfig world_config_for(const CampaignItem& item,
                                  const WorldAssets& assets);

/// Items per pool task. Also the reduction granularity of the streaming
/// aggregator and the commit granularity of the checkpoint layer: fixed, so
/// streaming results are bit-identical to the vector-of-results path at any
/// thread count, and a resumed campaign restores whole chunks.
inline constexpr std::size_t kCampaignChunk = 64;

class CampaignCheckpoint;  // exp/checkpoint.hpp: streaming-aggregate mode
class ResultsCheckpoint;   // exp/checkpoint.hpp: per-item results mode

/// Half-open range of kCampaignChunk-sized chunks [begin_chunk, end_chunk)
/// in a grid's global chunk index space. The unit the sharded coordinator
/// partitions campaigns by (exp::ShardPlan): because shard boundaries fall
/// on chunk boundaries — the reduction and checkpoint-commit granularity —
/// per-slice partials merged back in global chunk order are bit-identical
/// to a single-process run.
struct ChunkRange {
  std::size_t begin_chunk = 0;
  std::size_t end_chunk = 0;

  std::size_t chunk_count() const noexcept { return end_chunk - begin_chunk; }
  bool contains(std::size_t chunk) const noexcept {
    return chunk >= begin_chunk && chunk < end_chunk;
  }
};

/// Run every item; results are returned in item order (deterministic).
/// With a @p checkpoint (may be null), work is submitted in kCampaignChunk
/// chunks: chunks the checkpoint already holds are restored instead of
/// recomputed, and every freshly finished chunk is durably committed, so a
/// killed run resumes where it left off with bit-identical results.
std::vector<CampaignResult> run_campaign(const std::vector<CampaignItem>& items,
                                         const CampaignConfig& config,
                                         ResultsCheckpoint* checkpoint = nullptr);

/// Aggregate counters over a set of results (one Table IV row).
struct Aggregate {
  std::size_t simulations = 0;
  std::size_t sims_with_alerts = 0;
  std::size_t sims_with_hazards = 0;
  std::size_t sims_with_accidents = 0;
  std::size_t hazards_without_alerts = 0;  ///< hazard and no alert at all
  std::size_t fcw_activations = 0;
  double lane_invasion_rate_mean = 0.0;
  double tth_mean = 0.0;
  double tth_std = 0.0;

  /// Fraction helpers.
  double hazard_fraction() const noexcept;
  double accident_fraction() const noexcept;
  double alert_fraction() const noexcept;
};

/// Bit-exact snapshot of an AggregateAccumulator: the integer counters plus
/// the two Welford accumulators as raw bit patterns. This is what the
/// checkpoint layer persists per chunk; restoring it and merging in chunk
/// order reproduces an uninterrupted run exactly.
struct AggregateAccumulatorRecord {
  std::uint64_t simulations = 0;
  std::uint64_t sims_with_alerts = 0;
  std::uint64_t sims_with_hazards = 0;
  std::uint64_t sims_with_accidents = 0;
  std::uint64_t hazards_without_alerts = 0;
  std::uint64_t fcw_activations = 0;
  util::RunningStatsRecord invasion_rate;
  util::RunningStatsRecord tth;
};

/// Mergeable aggregate state: exact integer counters plus Welford moment
/// accumulators. The single reduction implementation behind both
/// aggregate() and run_campaign_streaming(), so the two can never drift.
class AggregateAccumulator {
 public:
  /// Fold one simulation outcome in.
  void add(const sim::SimulationSummary& summary);

  /// Fold another accumulator in (parallel/chunked reduction).
  void merge(const AggregateAccumulator& other);

  /// Finalize into the row the tables render.
  Aggregate finish() const;

  /// Exact snapshot; from_record(to_record()) is the identity.
  AggregateAccumulatorRecord to_record() const noexcept;

  /// Reconstitute an accumulator from a snapshot, bit-for-bit.
  static AggregateAccumulator from_record(
      const AggregateAccumulatorRecord& record) noexcept;

 private:
  Aggregate agg_;  ///< counter fields only; means/stds filled by finish()
  util::RunningStats invasion_rate_;
  util::RunningStats tth_;
};

/// Reduce results into an Aggregate (chunked exactly like the streaming
/// runner, so both produce bit-identical statistics).
Aggregate aggregate(const std::vector<CampaignResult>& results);

/// Streaming progress snapshot, delivered after every finished chunk.
struct CampaignProgress {
  std::size_t completed = 0;  ///< simulations finished so far
  std::size_t total = 0;      ///< grid size
};
using CampaignProgressFn = std::function<void(const CampaignProgress&)>;

/// Run every item WITHOUT materializing per-item results: items are
/// submitted in kCampaignChunk-sized tasks, each task folds its outcomes
/// into its own cache-line-padded accumulator, and the partials are merged
/// in chunk order at the end. Memory stays O(items / kCampaignChunk)
/// accumulators (~64 B each) instead of O(items) summaries, the returned
/// Aggregate is bit-identical to aggregate(run_campaign(items, config)) at
/// any thread count, and @p progress (may be empty; called under a lock)
/// enables live output for hour-long paper-scale campaigns.
///
/// With a @p checkpoint (may be null), chunks the checkpoint already holds
/// are restored (never recomputed) and counted into the first progress
/// callback, and each freshly finished chunk is committed — an fsync'd
/// atomic append — before it reports progress. Because restored and
/// recomputed partials merge in the same fixed chunk order, a run that is
/// killed and resumed any number of times returns an Aggregate bit-identical
/// to an uninterrupted run, at any thread count. A commit failure (e.g. disk
/// full) aborts outstanding work and rethrows after the pool drains.
///
/// With a @p chunks range (may be null = the whole grid), only the chunks
/// in [begin_chunk, end_chunk) are restored, run, folded, and counted: this
/// is the shard-worker entry point, where @p items is still the FULL grid
/// (so the checkpoint fingerprint matches every other slice of the same
/// campaign) but this process owns only its slice. Progress totals cover
/// the slice, and the returned Aggregate is the slice's alone — the merge
/// step (exp/shard.hpp) folds the per-chunk checkpoint records of all
/// slices in global chunk order to reconstruct the campaign total
/// bit-identically.
Aggregate run_campaign_streaming(const std::vector<CampaignItem>& items,
                                 const CampaignConfig& config,
                                 const CampaignProgressFn& progress = {},
                                 CampaignCheckpoint* checkpoint = nullptr,
                                 const ChunkRange* chunks = nullptr);

}  // namespace scaa::exp
