#pragma once

/// @file shard.hpp
/// Deterministic campaign sharding and bit-exact slice merging.
///
/// A campaign grid is embarrassingly parallel across processes, not just
/// threads: ShardPlan splits the grid's kCampaignChunk-sized chunks into N
/// contiguous, balanced, deterministic slices, each worker process runs its
/// slice through the streaming runner into its own checkpoint file (the
/// file fingerprints the FULL grid, so every slice of one campaign carries
/// the same fingerprint — see exp/checkpoint.hpp), and merge_slice_files
/// folds the per-chunk accumulator records of all slices back together in
/// global chunk order.
///
/// ## Why the merge is bit-identical to a single-process run
///
/// Three invariants stack:
///  1. Chunk boundaries are the reduction granularity: a single-process run
///     folds one accumulator per chunk and merges them in chunk order
///     (PR 2's streaming runner).
///  2. Shard boundaries fall ON chunk boundaries (ChunkRange), so the union
///     of all slices' chunk sets is exactly the single-process chunk set.
///  3. Checkpoint records snapshot accumulators as raw IEEE-754 bit
///     patterns (PR 3), so a restored chunk is indistinguishable from a
///     freshly computed one.
/// merge_slice_files therefore replays the exact single-process reduction —
/// same partials, same order — regardless of which process (or machine, or
/// how many kill/resume cycles) produced each chunk.
///
/// Worker failure costs nothing extra: a killed worker's slice resumes from
/// its last fsync'd chunk (PR 3), and flock exclusivity makes dispatching
/// the same slice twice fail cleanly.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/campaign.hpp"

namespace scaa::exp {

/// Deterministic partition of a grid's chunks into N contiguous slices.
/// Slice boundaries depend only on (item count, shard count): every
/// participant — coordinator, manually dispatched worker, merge — computes
/// the identical plan with no communication.
class ShardPlan {
 public:
  /// Throws std::invalid_argument when @p n_shards is 0.
  ShardPlan(std::size_t n_items, std::size_t n_shards);

  std::size_t item_count() const noexcept { return n_items_; }
  std::size_t chunk_count() const noexcept { return n_chunks_; }
  std::size_t shard_count() const noexcept { return n_shards_; }

  /// The half-open chunk range of @p shard (0-based). Balanced to within
  /// one chunk; empty when there are more shards than chunks.
  ChunkRange chunks_for(std::size_t shard) const;

  /// Simulations covered by @p shard's slice.
  std::size_t items_in(std::size_t shard) const;

 private:
  std::size_t n_items_ = 0;
  std::size_t n_chunks_ = 0;
  std::size_t n_shards_ = 1;
};

/// First 8 hex digits of a grid fingerprint: the short form embedded in
/// slice file names so two different grids can never share a file name
/// even when their human-readable slice names slug identically.
std::string short_fingerprint(std::uint64_t fingerprint);

/// File-name suffix of one shard's slice: ".s<i+1>of<N>" (1-based, matching
/// the CLI's --shard i/N). Empty for the unsharded single-file case.
std::string shard_suffix(std::size_t shard, std::size_t n_shards);

/// Fold the per-chunk records of @p slice_paths (agg-mode checkpoint files
/// of the SAME grid) in global chunk order into the campaign Aggregate —
/// bit-identical to an uninterrupted single-process run (see file comment).
///
/// Throws CheckpointError when a file is missing/corrupt/locked, when a
/// file's fingerprint does not match @p items, when two files both commit
/// the same chunk (duplicate or overlapping slices), or when the union of
/// slices does not cover every chunk (the diagnostic names the missing
/// chunks and the resume command that completes them). An empty slice —
/// a valid header and no records, which is what a worker whose slice holds
/// zero chunks leaves behind — contributes nothing and is fine.
Aggregate merge_slice_files(const std::vector<CampaignItem>& items,
                            const std::vector<std::string>& slice_paths);

}  // namespace scaa::exp
