#include "adas/controls.hpp"

#include <algorithm>
#include <cmath>

#include "util/units.hpp"

namespace scaa::adas {

Controls::Controls(msg::PubSubBus& bus, can::CanBus& can_bus,
                   const can::Database& db, ControlsConfig config,
                   const vehicle::VehicleParams& params, util::Rng rng)
    : bus_(&bus),
      can_bus_(&can_bus),
      db_(&db),
      config_(config),
      model_(bus),
      radar_(bus),
      car_state_(bus),
      lateral_planner_(config.lateral, rng),
      longitudinal_planner_(config.acc),
      torque_controller_(config.steer, params),
      long_control_(config.longitudinal),
      packer_(db),
      steering_msg_(db.handle("STEERING_CONTROL")),
      gas_brake_msg_(db.handle("GAS_BRAKE_COMMAND")),
      steer_angle_sig_(
          db.signal_handle("STEERING_CONTROL", can::sig::kSteerAngleCmd)),
      steer_enabled_sig_(
          db.signal_handle("STEERING_CONTROL", can::sig::kSteerEnabled)),
      accel_sig_(db.signal_handle("GAS_BRAKE_COMMAND", can::sig::kAccelCmd)),
      brake_request_sig_(
          db.signal_handle("GAS_BRAKE_COMMAND", can::sig::kBrakeRequest)),
      steering_values_(db.schema().signal_count(steering_msg_),
                       can::kSignalUnset),
      gas_brake_values_(db.schema().signal_count(gas_brake_msg_),
                        can::kSignalUnset) {}

void Controls::reset(const can::Database& db, ControlsConfig config,
                     const vehicle::VehicleParams& params, util::Rng rng) {
  if (&db != db_) {
    // Different database: the precompiled handles and value-buffer sizes
    // are stale, so re-resolve everything. This path allocates (string
    // lookups, buffer resize); the hot campaign path never takes it.
    db_ = &db;
    packer_ = can::CanPacker(db);
    steering_msg_ = db.handle("STEERING_CONTROL");
    gas_brake_msg_ = db.handle("GAS_BRAKE_COMMAND");
    steer_angle_sig_ =
        db.signal_handle("STEERING_CONTROL", can::sig::kSteerAngleCmd);
    steer_enabled_sig_ =
        db.signal_handle("STEERING_CONTROL", can::sig::kSteerEnabled);
    accel_sig_ = db.signal_handle("GAS_BRAKE_COMMAND", can::sig::kAccelCmd);
    brake_request_sig_ =
        db.signal_handle("GAS_BRAKE_COMMAND", can::sig::kBrakeRequest);
    steering_values_.assign(db.schema().signal_count(steering_msg_),
                            can::kSignalUnset);
    gas_brake_values_.assign(db.schema().signal_count(gas_brake_msg_),
                             can::kSignalUnset);
  } else {
    packer_.reset_counters();
    std::fill(steering_values_.begin(), steering_values_.end(),
              can::kSignalUnset);
    std::fill(gas_brake_values_.begin(), gas_brake_values_.end(),
              can::kSignalUnset);
  }
  config_ = config;
  model_.reset();
  radar_.reset();
  car_state_.reset();
  lead_tracker_ = LeadTracker();
  lateral_planner_ = LateralPlanner(config.lateral, rng);
  longitudinal_planner_ = LongitudinalPlanner(config.acc);
  torque_controller_ = TorqueController(config.steer, params);
  long_control_ = LongControl(config.longitudinal);
  alert_manager_ = AlertManager();
  last_radar_seq_ = 0;
  last_model_seq_ = 0;
  engaged_ = true;
}

ControlsOutput Controls::step(std::uint64_t step_index, double dt) {
  ControlsOutput out;
  out.engaged = engaged_;

  // --- estimation ---
  lead_tracker_.predict(dt);
  if (radar_.updates() != last_radar_seq_) {
    last_radar_seq_ = radar_.updates();
    lead_tracker_.update(radar_.value());
  }

  const double ego_speed =
      car_state_.valid() ? car_state_.value().speed : 0.0;

  // --- planning ---
  if (model_.updates() != last_model_seq_) {
    last_model_seq_ = model_.updates();
    // Lateral planning runs at the camera rate; dt between model frames.
    lateral_planner_.update(model_.value(), 0.05, ego_speed);
  }
  const LeadEstimate lead = lead_tracker_.estimate();
  const LongitudinalPlan long_plan = longitudinal_planner_.update(
      ego_speed, config_.cruise_speed, lead);

  // --- control ---
  double steer_cmd = 0.0;
  double accel_cmd = 0.0;
  if (engaged_) {
    steer_cmd = torque_controller_.update(
        lateral_planner_.plan().desired_curvature,
        lateral_planner_.plan().raw_curvature, dt);
    accel_cmd = long_control_.update(long_plan.accel, dt);
  } else {
    long_control_.reset(0.0);
  }

  // --- safety clamp (last software stage) ---
  const vehicle::ActuatorCommand clamped =
      clamp_to_limits({accel_cmd, steer_cmd}, config_.limits);
  out.accel_cmd = clamped.accel;
  out.steer_angle_cmd = clamped.steer_angle;

  // --- alerts ---
  AlertInputs alert_in;
  alert_in.steer_saturated = engaged_ && torque_controller_.saturated();
  alert_in.brake_cmd = std::max(0.0, -clamped.accel);
  alert_in.lead_valid = lead.valid;
  alert_in.fcw_brake_threshold = config_.limits.fcw_brake;
  out.alert = alert_manager_.update(alert_in);

  // --- publish state ---
  msg::CarControl cc;
  cc.mono_time = step_index;
  cc.enabled = engaged_;
  cc.accel = clamped.accel;
  cc.steer_angle = clamped.steer_angle;
  bus_->publish(cc);

  msg::ControlsState cs;
  cs.mono_time = step_index;
  cs.active = engaged_;
  cs.steer_saturated = alert_manager_.steer_saturated_active();
  cs.fcw = alert_manager_.fcw_active();
  cs.alert_count = static_cast<std::uint32_t>(alert_manager_.total_events());
  bus_->publish(cs);

  // --- encode actuator commands onto the CAN bus ---
  // Wire units: centi-degrees for steering, milli-m/s^2 for acceleration.
  // Handles were resolved at construction; packing is allocation-free.
  steering_values_[steer_angle_sig_.signal] =
      units::rad_to_deg(clamped.steer_angle);
  steering_values_[steer_enabled_sig_.signal] = engaged_ ? 1.0 : 0.0;
  can_bus_->send(packer_.pack(steering_msg_, steering_values_));

  gas_brake_values_[accel_sig_.signal] = clamped.accel;
  gas_brake_values_[brake_request_sig_.signal] =
      clamped.accel < 0.0 ? 1.0 : 0.0;
  can_bus_->send(packer_.pack(gas_brake_msg_, gas_brake_values_));

  return out;
}

}  // namespace scaa::adas
