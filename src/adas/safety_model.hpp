#pragma once

/// @file safety_model.hpp
/// OpenPilot's output-command safety envelope (paper §II-A).
///
/// These are the limits the legitimate control stack enforces on its own
/// outputs — and, crucially for the paper, the limits the Context-Aware
/// attack reads out of the open-source code and uses as the constraint set
/// of Eq. 1 so its corrupted commands stay indistinguishable from
/// legitimate ones.

#include "vehicle/vehicle.hpp"

namespace scaa::adas {

/// The published OpenPilot/ISO-22179-style envelope.
struct SafetyLimits {
  double max_accel = 2.0;        ///< [m/s^2]
  double min_accel = -3.5;       ///< [m/s^2] (braking)
  double max_steer_delta = 0.0087;  ///< [rad] ~0.5 deg max angle offset per command
  double speed_margin = 1.1;     ///< commanded speed may not exceed 1.1 x cruise

  /// FCW threshold on the commanded deceleration. Deliberately *outside*
  /// the command envelope (|min_accel| < fcw_brake): with commands clamped
  /// to min_accel the warning can never fire — the design defect the paper
  /// demonstrates (Observation 2).
  double fcw_brake = 4.5;        ///< [m/s^2] decel that triggers FCW
};

/// Clamp an actuator command set into the envelope.
vehicle::ActuatorCommand clamp_to_limits(const vehicle::ActuatorCommand& cmd,
                                         const SafetyLimits& limits) noexcept;

}  // namespace scaa::adas
