#pragma once

/// @file kalman.hpp
/// Kalman filters used by state estimation (and by the attacker's speed
/// prediction, paper Eq. 2-3).

#include <array>

namespace scaa::adas {

/// Scalar filter with a constant Kalman gain, exactly the paper's Eq. 2-3:
///   prediction: x̂_{t+1|t} = x̂_t + u * dt
///   update:     x̂_{t+1}  = x̂_{t+1|t} + K (z_{t+1} - x̂_{t+1|t})
/// Used by the attack engine to predict Ego speed one step ahead while
/// choosing corruption values.
class ConstantGainKalman {
 public:
  /// @p gain is the fixed Kalman gain K in (0, 1].
  explicit ConstantGainKalman(double gain, double initial = 0.0) noexcept
      : gain_(gain), estimate_(initial) {}

  /// Predict one step ahead under control input @p rate (dx/dt) — Eq. 2.
  double predict(double rate, double dt) const noexcept {
    return estimate_ + rate * dt;
  }

  /// Fold in a measurement after the prediction — Eq. 3. Returns the new
  /// estimate.
  double update(double predicted, double measurement) noexcept {
    estimate_ = predicted + gain_ * (measurement - predicted);
    return estimate_;
  }

  /// Current estimate.
  double estimate() const noexcept { return estimate_; }

  /// Reset the estimate.
  void reset(double value) noexcept { estimate_ = value; }

 private:
  double gain_;
  double estimate_;
};

/// Two-state (value, rate) constant-velocity Kalman filter with full
/// covariance propagation. Used by the lead tracker to smooth radar range
/// and range rate.
class Kalman2D {
 public:
  /// @p process_noise: continuous white acceleration PSD (q).
  /// @p meas_noise_value / @p meas_noise_rate: measurement variances.
  Kalman2D(double process_noise, double meas_noise_value,
           double meas_noise_rate) noexcept;

  /// Initialize state and covariance from a first measurement.
  void init(double value, double rate) noexcept;

  /// Time update over @p dt seconds.
  void predict(double dt) noexcept;

  /// Measurement update with value + rate observation.
  void update(double value, double rate) noexcept;

  /// Measurement update with only a value observation.
  void update_value_only(double value) noexcept;

  double value() const noexcept { return x_[0]; }
  double rate() const noexcept { return x_[1]; }
  bool initialized() const noexcept { return initialized_; }

 private:
  double q_;
  double r_value_;
  double r_rate_;
  std::array<double, 2> x_{};            ///< state [value, rate]
  std::array<std::array<double, 2>, 2> p_{};  ///< covariance
  bool initialized_ = false;
};

}  // namespace scaa::adas
