#include "adas/alerts.hpp"

namespace scaa::adas {

AlertKind AlertManager::update(const AlertInputs& inputs) noexcept {
  // FCW: commanded braking beyond the warning threshold with a lead ahead.
  // The command path clamps decel below this threshold, so in practice the
  // warning never fires — reproducing the paper's Observation 2.
  const bool fcw_now =
      inputs.lead_valid && inputs.brake_cmd >= inputs.fcw_brake_threshold;
  if (fcw_now && !fcw_active_) ++fcw_events_;
  fcw_active_ = fcw_now;

  if (inputs.steer_saturated && !saturated_active_) ++saturated_events_;
  saturated_active_ = inputs.steer_saturated;

  if (fcw_active_) return AlertKind::kFcw;
  if (saturated_active_) return AlertKind::kSteerSaturated;
  return AlertKind::kNone;
}

}  // namespace scaa::adas
