#include "adas/longitudinal_planner.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace scaa::adas {

LongitudinalPlan LongitudinalPlanner::update(
    double ego_speed, double cruise_speed, const LeadEstimate& lead) noexcept {
  LongitudinalPlan plan;

  // Cruise law: proportional speed tracking.
  const double cruise_accel =
      config_.cruise_gain * (cruise_speed - ego_speed);

  double accel = cruise_accel;
  if (lead.valid) {
    // Constant-time-gap follow law.
    plan.desired_gap =
        config_.stop_distance + config_.follow_headway * ego_speed;
    const double gap_error = lead.distance - plan.desired_gap;
    const double follow_accel = config_.gap_gain * gap_error +
                                config_.rel_speed_gain * lead.rel_speed;
    if (follow_accel < cruise_accel) {
      accel = follow_accel;
      plan.following = true;
    }
  }

  plan.accel = math::clamp(accel, config_.min_accel, config_.max_accel);
  return plan;
}

}  // namespace scaa::adas
