#pragma once

/// @file lateral_planner.hpp
/// ALC lateral planning: lane-centre tracking from perception output.

#include "msg/messages.hpp"
#include "util/rng.hpp"

namespace scaa::adas {

/// Tuning of the lateral planner. The structure is curvature feed-forward
/// plus offset/heading feedback (a Stanley-style law — same family as
/// OpenPilot's controller, without the preview MPC). Gains are chosen for
/// ~critical damping at highway speed: omega = v*sqrt(offset_gain).
struct LateralPlannerConfig {
  double offset_gain = 0.006;     ///< [1/m^2] curvature per metre of offset
  double heading_gain = 0.12;     ///< [1/m] curvature per radian of heading err
  double gain_ref_speed = 15.0;   ///< [m/s] gains scheduled by (ref/v)^2 —
                                  ///< keeps the loop crossover speed-invariant
  double offset_filter = 0.35;    ///< low-pass alpha on the measured offset
  double curvature_filter = 0.25; ///< low-pass alpha on model curvature
  double max_curvature = 0.008;   ///< [1/m] plan clip
  double invalid_decay = 0.08;    ///< per-frame decay toward FF when lanes lost

  /// Nonlinear lane-edge authority: extra restoring gain once the car
  /// strays past `edge_start` from centre. Must stay modest — combined
  /// with actuator lag a steep wall destabilizes the loop (kept as an
  /// ablation knob; see bench_ablation).
  double edge_start = 0.75;       ///< [m] where the extra gain kicks in
  double edge_gain = 0.016;       ///< [1/m^2] extra curvature per metre beyond

  /// Path-prediction wander: the planner's *target* lateral position is not
  /// exactly the lane centre. It drifts as an OU process (the documented
  /// source of OpenPilot's in-lane weaving) and is systematically pulled
  /// toward the outside of curves. Because the error is in the target — not
  /// in the measured lines — eavesdroppers (and the lane-invasion sensor)
  /// see the true excursions.
  double target_bias_std = 0.35;       ///< [m] stationary std of the wander
  double target_bias_tc = 4.0;         ///< [s] OU correlation time
  double curve_target_gain = 450.0;    ///< [m per 1/m] outside-of-curve pull

  double min_line_prob = 0.3;     ///< below this, hold the previous plan
};

/// Output of the lateral planner each cycle.
struct LateralPlan {
  double desired_curvature = 0.0;  ///< [1/m], +left (post-clip)
  double raw_curvature = 0.0;      ///< [1/m] demand before the authority clip
  double center_offset = 0.0;      ///< perceived offset from lane centre, +left
  bool lines_valid = false;
};

/// Computes the desired path curvature every perception frame.
class LateralPlanner {
 public:
  /// @p rng seeds the path-prediction wander (deterministic per world).
  LateralPlanner(LateralPlannerConfig config, util::Rng rng) noexcept
      : config_(config), rng_(rng) {}

  /// Update with the latest modelV2 output; @p dt is the perception period
  /// and @p ego_speed [m/s] drives the gain schedule.
  LateralPlan update(const msg::ModelV2& model, double dt,
                     double ego_speed) noexcept;

  /// Most recent plan (held when perception is not confident).
  const LateralPlan& plan() const noexcept { return plan_; }

  /// Current target offset from the lane centre (exposed for tests).
  double target_offset() const noexcept { return target_offset_; }

 private:
  LateralPlannerConfig config_;
  util::Rng rng_;
  LateralPlan plan_;
  double filtered_curvature_ = 0.0;
  double filtered_offset_ = 0.0;
  double target_bias_ = 0.0;
  double target_offset_ = 0.0;
  bool has_state_ = false;
};

}  // namespace scaa::adas
