#pragma once

/// @file lead_tracker.hpp
/// Lead-vehicle state estimation from radar messages.

#include "adas/kalman.hpp"
#include "msg/messages.hpp"

namespace scaa::adas {

/// Smoothed lead estimate consumed by the longitudinal planner.
struct LeadEstimate {
  bool valid = false;
  double distance = 0.0;   ///< smoothed gap [m]
  double rel_speed = 0.0;  ///< smoothed lead-minus-ego speed [m/s]
  double lead_speed = 0.0; ///< absolute lead speed [m/s]
};

/// Tracks the lead through radar updates; coasts through short dropouts
/// (predict-only) and invalidates the track after a timeout, mirroring how
/// production trackers behave.
class LeadTracker {
 public:
  LeadTracker() noexcept;

  /// Time update at the control rate.
  void predict(double dt) noexcept;

  /// Fold in one radarState message.
  void update(const msg::RadarState& radar) noexcept;

  /// Current estimate.
  LeadEstimate estimate() const noexcept;

  /// Seconds since the last valid radar return (large when never seen).
  double staleness() const noexcept { return stale_time_; }

 private:
  Kalman2D filter_;
  double lead_speed_ = 0.0;
  double stale_time_ = 1e9;
  static constexpr double kMaxStale = 0.5;  ///< [s] track hold time
};

}  // namespace scaa::adas
