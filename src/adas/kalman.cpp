#include "adas/kalman.hpp"

namespace scaa::adas {

Kalman2D::Kalman2D(double process_noise, double meas_noise_value,
                   double meas_noise_rate) noexcept
    : q_(process_noise), r_value_(meas_noise_value), r_rate_(meas_noise_rate) {}

void Kalman2D::init(double value, double rate) noexcept {
  x_ = {value, rate};
  p_ = {{{4.0, 0.0}, {0.0, 4.0}}};
  initialized_ = true;
}

void Kalman2D::predict(double dt) noexcept {
  if (!initialized_) return;
  // x = F x with F = [[1, dt], [0, 1]]
  x_[0] += x_[1] * dt;
  // P = F P F' + Q, Q from white-accel model.
  const double p00 = p_[0][0] + dt * (p_[1][0] + p_[0][1]) + dt * dt * p_[1][1];
  const double p01 = p_[0][1] + dt * p_[1][1];
  const double p10 = p_[1][0] + dt * p_[1][1];
  const double p11 = p_[1][1];
  const double dt2 = dt * dt;
  p_[0][0] = p00 + 0.25 * dt2 * dt2 * q_;
  p_[0][1] = p01 + 0.5 * dt * dt2 * q_;
  p_[1][0] = p10 + 0.5 * dt * dt2 * q_;
  p_[1][1] = p11 + dt2 * q_;
}

void Kalman2D::update(double value, double rate) noexcept {
  if (!initialized_) {
    init(value, rate);
    return;
  }
  // Sequential scalar updates (H rows are orthogonal unit vectors, so this
  // is exact and avoids a 2x2 inversion).
  update_value_only(value);
  // Rate measurement: H = [0 1].
  const double s = p_[1][1] + r_rate_;
  const double k0 = p_[0][1] / s;
  const double k1 = p_[1][1] / s;
  const double innovation = rate - x_[1];
  x_[0] += k0 * innovation;
  x_[1] += k1 * innovation;
  const double p00 = p_[0][0] - k0 * p_[1][0];
  const double p01 = p_[0][1] - k0 * p_[1][1];
  const double p10 = p_[1][0] - k1 * p_[1][0];
  const double p11 = p_[1][1] - k1 * p_[1][1];
  p_ = {{{p00, p01}, {p10, p11}}};
}

void Kalman2D::update_value_only(double value) noexcept {
  if (!initialized_) {
    init(value, 0.0);
    return;
  }
  // H = [1 0].
  const double s = p_[0][0] + r_value_;
  const double k0 = p_[0][0] / s;
  const double k1 = p_[1][0] / s;
  const double innovation = value - x_[0];
  x_[0] += k0 * innovation;
  x_[1] += k1 * innovation;
  const double p00 = p_[0][0] - k0 * p_[0][0];
  const double p01 = p_[0][1] - k0 * p_[0][1];
  const double p10 = p_[1][0] - k1 * p_[0][0];
  const double p11 = p_[1][1] - k1 * p_[0][1];
  p_ = {{{p00, p01}, {p10, p11}}};
}

}  // namespace scaa::adas
