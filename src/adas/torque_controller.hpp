#pragma once

/// @file torque_controller.hpp
/// Lateral control: desired curvature -> road-wheel angle command.

#include "vehicle/params.hpp"

namespace scaa::adas {

/// Tuning of the steering controller. The command envelope mirrors
/// OpenPilot/Panda limits: a per-cycle angle-delta limit (what makes sudden
/// swerves impossible for the legitimate controller and what the attacker's
/// Eq. 1 constraint set is built from) plus an absolute command ceiling.
struct SteerConfig {
  double angle_cmd_limit = 0.0175;    ///< [rad] ~1 deg absolute command clip
  double angle_rate_limit = 0.0044;   ///< [rad per cycle] ~0.25 deg / 10 ms
  double saturation_threshold = 0.05;    ///< [rad] raw demand (~2.9 deg) meaning "cannot deliver"
  double saturation_time = 1.4;       ///< [s] sustained time before alert
};

/// Converts planned curvature to an angle command with rate/absolute limits,
/// and tracks saturation (the `steerSaturated` alert source).
class TorqueController {
 public:
  TorqueController(SteerConfig config,
                   const vehicle::VehicleParams& params) noexcept
      : config_(config), wheelbase_(params.wheelbase) {}

  /// Compute this cycle's angle command [rad].
  /// @p desired_curvature from the lateral planner (post-clip)
  /// @p raw_curvature the planner's pre-clip demand (saturation measure)
  /// @p dt control period [s]
  double update(double desired_curvature, double raw_curvature,
                double dt) noexcept;

  /// True while the controller has been saturated long enough to alert.
  bool saturated() const noexcept { return saturated_; }

  /// Instantaneous saturation (before the sustain window).
  bool saturated_now() const noexcept { return saturated_now_; }

  /// Last command issued [rad].
  double last_command() const noexcept { return cmd_; }

  const SteerConfig& config() const noexcept { return config_; }

 private:
  SteerConfig config_;
  double wheelbase_;
  double cmd_ = 0.0;
  double saturated_time_ = 0.0;
  bool saturated_ = false;
  bool saturated_now_ = false;
};

}  // namespace scaa::adas
