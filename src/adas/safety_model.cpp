#include "adas/safety_model.hpp"

#include "util/math.hpp"

namespace scaa::adas {

vehicle::ActuatorCommand clamp_to_limits(const vehicle::ActuatorCommand& cmd,
                                         const SafetyLimits& limits) noexcept {
  vehicle::ActuatorCommand out = cmd;
  out.accel = math::clamp(cmd.accel, limits.min_accel, limits.max_accel);
  return out;
}

}  // namespace scaa::adas
