#pragma once

/// @file long_control.hpp
/// Longitudinal control: planned accel -> jerk-limited actuator command.

namespace scaa::adas {

/// Tuning of the longitudinal output stage.
struct LongControlConfig {
  double max_jerk = 4.0;  ///< [m/s^3] command slew limit
};

/// Applies a jerk limit to the planner's acceleration request — the last
/// software stage before the command is encoded onto the CAN bus.
class LongControl {
 public:
  explicit LongControl(LongControlConfig config) noexcept : config_(config) {}

  /// Produce this cycle's accel command [m/s^2].
  double update(double planned_accel, double dt) noexcept;

  /// Last command issued.
  double last_command() const noexcept { return cmd_; }

  /// Reset internal state (e.g., on engage).
  void reset(double accel = 0.0) noexcept { cmd_ = accel; }

 private:
  LongControlConfig config_;
  double cmd_ = 0.0;
};

}  // namespace scaa::adas
