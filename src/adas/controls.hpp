#pragma once

/// @file controls.hpp
/// The 100 Hz control daemon ("controlsd"): glues perception, planning,
/// control, safety and alerting together, and encodes actuator commands
/// onto the CAN bus.

#include <cstdint>
#include <memory>
#include <vector>

#include "adas/alerts.hpp"
#include "adas/lateral_planner.hpp"
#include "adas/lead_tracker.hpp"
#include "adas/long_control.hpp"
#include "adas/longitudinal_planner.hpp"
#include "adas/safety_model.hpp"
#include "adas/torque_controller.hpp"
#include "can/bus.hpp"
#include "can/packer.hpp"
#include "msg/bus.hpp"

namespace scaa::adas {

/// Aggregate configuration of the control stack.
struct ControlsConfig {
  AccConfig acc;
  LateralPlannerConfig lateral;
  SteerConfig steer;
  LongControlConfig longitudinal;
  SafetyLimits limits;
  double cruise_speed = 26.82;  ///< [m/s] = 60 mph set speed
};

/// One control cycle's externally visible outputs (for the world loop and
/// for tests).
struct ControlsOutput {
  double accel_cmd = 0.0;       ///< [m/s^2] post-safety-clamp
  double steer_angle_cmd = 0.0; ///< [rad]
  AlertKind alert = AlertKind::kNone;
  bool engaged = false;
};

/// The control stack. Consumes sensor messages from the pub/sub bus,
/// publishes carControl/controlsState, and emits STEERING_CONTROL and
/// GAS_BRAKE_COMMAND frames on the CAN bus every cycle.
class Controls {
 public:
  /// All dependencies are borrowed and must outlive the Controls instance.
  /// @p rng seeds the lateral planner's path-prediction wander.
  Controls(msg::PubSubBus& bus, can::CanBus& can_bus,
           const can::Database& db, ControlsConfig config,
           const vehicle::VehicleParams& params, util::Rng rng);

  /// Re-initialize the whole control stack for a new simulation on the
  /// same buses, bit-identical to fresh construction. The bus
  /// subscriptions stay attached (their latches are cleared); the
  /// precompiled CAN codec handles are reused — and therefore the reset is
  /// allocation-free — as long as @p db is the database the stack was
  /// last wired against. A different database re-resolves the handles
  /// (the only allocating path; campaign arenas always share one db).
  void reset(const can::Database& db, ControlsConfig config,
             const vehicle::VehicleParams& params, util::Rng rng);

  /// Run one 100 Hz cycle. @p step_index stamps outgoing messages.
  ControlsOutput step(std::uint64_t step_index, double dt);

  /// Engage/disengage the ADAS (cruise main switch).
  void set_engaged(bool engaged) noexcept { engaged_ = engaged; }
  bool engaged() const noexcept { return engaged_; }

  /// Alert statistics.
  const AlertManager& alerts() const noexcept { return alert_manager_; }

  /// Component access for white-box tests.
  const LeadTracker& lead_tracker() const noexcept { return lead_tracker_; }
  const LateralPlanner& lateral_planner() const noexcept { return lateral_planner_; }
  const ControlsConfig& config() const noexcept { return config_; }

 private:
  msg::PubSubBus* bus_;
  can::CanBus* can_bus_;
  const can::Database* db_;  ///< database the codec handles resolve against
  ControlsConfig config_;

  msg::Latest<msg::ModelV2> model_;
  msg::Latest<msg::RadarState> radar_;
  msg::Latest<msg::CarState> car_state_;

  LeadTracker lead_tracker_;
  LateralPlanner lateral_planner_;
  LongitudinalPlanner longitudinal_planner_;
  TorqueController torque_controller_;
  LongControl long_control_;
  AlertManager alert_manager_;
  can::CanPacker packer_;

  // CAN codec handles, resolved once at construction so the 100 Hz step
  // packs through the allocation-free precompiled path. The value buffers
  // are sized from the database schema (and preallocated here), so extra
  // signals in a message stay unset/raw-zero rather than being a failure.
  can::MessageHandle steering_msg_;
  can::MessageHandle gas_brake_msg_;
  can::SignalHandle steer_angle_sig_;
  can::SignalHandle steer_enabled_sig_;
  can::SignalHandle accel_sig_;
  can::SignalHandle brake_request_sig_;
  std::vector<double> steering_values_;
  std::vector<double> gas_brake_values_;

  std::uint64_t last_radar_seq_ = 0;
  std::uint64_t last_model_seq_ = 0;
  bool engaged_ = true;
};

}  // namespace scaa::adas
