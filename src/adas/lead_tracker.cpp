#include "adas/lead_tracker.hpp"

namespace scaa::adas {

LeadTracker::LeadTracker() noexcept
    // Process noise covers lead acceleration up to ~2.5 m/s^2; measurement
    // variances match the radar model's noise.
    : filter_(6.0, 0.25 * 0.25, 0.12 * 0.12) {}

void LeadTracker::predict(double dt) noexcept {
  filter_.predict(dt);
  stale_time_ += dt;
}

void LeadTracker::update(const msg::RadarState& radar) noexcept {
  if (!radar.lead_valid) return;
  filter_.update(radar.lead_distance, radar.lead_rel_speed);
  lead_speed_ = radar.lead_speed;
  stale_time_ = 0.0;
}

LeadEstimate LeadTracker::estimate() const noexcept {
  LeadEstimate est;
  est.valid = filter_.initialized() && stale_time_ <= kMaxStale;
  if (est.valid) {
    est.distance = filter_.value();
    est.rel_speed = filter_.rate();
    est.lead_speed = lead_speed_;
  }
  return est;
}

}  // namespace scaa::adas
