#include "adas/torque_controller.hpp"

#include <cmath>

#include "util/math.hpp"

namespace scaa::adas {

double TorqueController::update(double desired_curvature, double raw_curvature,
                                double dt) noexcept {
  // Kinematic inversion: angle = atan(L * curvature).
  const double desired_angle =
      std::atan(wheelbase_ * desired_curvature);

  // Saturation is judged on the *unclipped* demand against the command
  // envelope: the controller wants more steering than it may command.
  const double raw_angle = std::atan(wheelbase_ * raw_curvature);
  saturated_now_ = std::abs(raw_angle) > config_.saturation_threshold;
  if (saturated_now_)
    saturated_time_ += dt;
  else
    saturated_time_ = 0.0;
  saturated_ = saturated_time_ >= config_.saturation_time;

  // Apply the command envelope: absolute clip + per-cycle rate limit.
  const double clipped = math::clamp(desired_angle, -config_.angle_cmd_limit,
                                     config_.angle_cmd_limit);
  cmd_ = math::rate_limit(cmd_, clipped, config_.angle_rate_limit);
  return cmd_;
}

}  // namespace scaa::adas
