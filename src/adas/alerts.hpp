#pragma once

/// @file alerts.hpp
/// ADAS alert generation: steerSaturated and Forward Collision Warning.

#include <cstdint>

namespace scaa::adas {

/// Kinds of alerts the ADAS can raise.
enum class AlertKind : std::uint8_t {
  kNone = 0,
  kSteerSaturated,
  kFcw,
};

/// Inputs evaluated each control cycle.
struct AlertInputs {
  bool steer_saturated = false;  ///< sustained saturation from TorqueController
  double brake_cmd = 0.0;        ///< commanded decel magnitude [m/s^2], >= 0
  bool lead_valid = false;
  double fcw_brake_threshold = 4.5;  ///< from SafetyLimits::fcw_brake
};

/// Edge-triggered alert bookkeeping: an "alert event" is counted when an
/// alert condition turns on (matching how the paper counts alerts per
/// simulation).
class AlertManager {
 public:
  /// Evaluate one control cycle; returns the alert active this cycle.
  AlertKind update(const AlertInputs& inputs) noexcept;

  /// Events since construction.
  std::uint64_t steer_saturated_events() const noexcept { return saturated_events_; }
  std::uint64_t fcw_events() const noexcept { return fcw_events_; }
  std::uint64_t total_events() const noexcept {
    return saturated_events_ + fcw_events_;
  }

  /// Level-state of the alerts this cycle.
  bool steer_saturated_active() const noexcept { return saturated_active_; }
  bool fcw_active() const noexcept { return fcw_active_; }
  bool any_active() const noexcept {
    return saturated_active_ || fcw_active_;
  }

 private:
  bool saturated_active_ = false;
  bool fcw_active_ = false;
  std::uint64_t saturated_events_ = 0;
  std::uint64_t fcw_events_ = 0;
};

}  // namespace scaa::adas
