#include "adas/lateral_planner.hpp"

#include <cmath>

#include "util/math.hpp"

namespace scaa::adas {

LateralPlan LateralPlanner::update(const msg::ModelV2& model, double dt,
                                   double ego_speed) noexcept {
  const bool valid = model.left_lane_line >= model.right_lane_line &&
                     model.left_line_prob >= config_.min_line_prob &&
                     model.right_line_prob >= config_.min_line_prob;
  if (!valid) {
    // Lanes lost: decay the plan toward pure curvature feed-forward so a
    // stale correction cannot steer the car further out.
    plan_.lines_valid = false;
    plan_.desired_curvature = math::lowpass(
        plan_.desired_curvature, filtered_curvature_, config_.invalid_decay);
    plan_.raw_curvature = plan_.desired_curvature;
    return plan_;
  }

  // Perceived offset from the lane centre (+left of centre): the centre
  // sits at the mean of the two line offsets; if the centre is to our left
  // (positive), we are right of centre (negative offset).
  const double center = 0.5 * (model.left_lane_line + model.right_lane_line);
  const double offset = -center;

  if (!has_state_) {
    filtered_offset_ = offset;
    filtered_curvature_ = model.path_curvature;
    has_state_ = true;
  } else {
    filtered_offset_ =
        math::lowpass(filtered_offset_, offset, config_.offset_filter);
    filtered_curvature_ = math::lowpass(
        filtered_curvature_, model.path_curvature, config_.curvature_filter);
  }

  // Path-prediction wander: OU bias plus the outside-of-curve pull. This is
  // where the planner *chooses* to sit relative to the lane centre.
  if (dt > 0.0) {
    const double theta = 1.0 / config_.target_bias_tc;
    const double diffusion =
        config_.target_bias_std * std::sqrt(2.0 * theta * dt);
    target_bias_ +=
        -theta * target_bias_ * dt + rng_.gaussian(0.0, diffusion);
  }
  // The wander is bounded: the planner may aim off-centre but never at a
  // lane line itself.
  target_offset_ = math::clamp(
      target_bias_ - config_.curve_target_gain * filtered_curvature_, -1.0,
      1.0);

  // Gain schedule: feedback curvature authority shrinks with speed^2 (the
  // same lateral acceleration budget at any speed), keeping the loop
  // crossover — and therefore stability margins — speed-invariant.
  const double v = std::max(ego_speed, 3.0);
  const double kd_scale = std::min(
      1.0, (config_.gain_ref_speed / v) * (config_.gain_ref_speed / v));
  const double kh_scale = std::min(1.0, config_.gain_ref_speed / v);

  // Edge authority: additional restoring curvature beyond edge_start,
  // measured against the TRUE lane centre (the edge is where the lines
  // are, regardless of where the planner wants to sit).
  const double excess =
      std::max(0.0, std::abs(filtered_offset_) - config_.edge_start);
  const double edge_term =
      config_.edge_gain * kd_scale * excess * math::sign(filtered_offset_);

  const double raw = filtered_curvature_
                     - config_.offset_gain * kd_scale *
                           (filtered_offset_ - target_offset_)
                     - edge_term
                     + config_.heading_gain * kh_scale *
                           model.path_heading_error;
  const double curvature =
      math::clamp(raw, -config_.max_curvature, config_.max_curvature);

  plan_.raw_curvature = raw;
  plan_.desired_curvature = curvature;
  plan_.center_offset = offset;
  plan_.lines_valid = true;
  return plan_;
}

}  // namespace scaa::adas
