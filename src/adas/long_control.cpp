#include "adas/long_control.hpp"

#include "util/math.hpp"

namespace scaa::adas {

double LongControl::update(double planned_accel, double dt) noexcept {
  cmd_ = math::rate_limit(cmd_, planned_accel, config_.max_jerk * dt);
  return cmd_;
}

}  // namespace scaa::adas
