#pragma once

/// @file longitudinal_planner.hpp
/// ACC longitudinal planning: cruise / follow acceleration arbitration.

#include "adas/lead_tracker.hpp"

namespace scaa::adas {

/// Tuning of the ACC planner. Default limits are OpenPilot's published
/// safety envelope (paper §II-A): accel in [-3.5, 2.0] m/s^2.
struct AccConfig {
  double max_accel = 2.0;      ///< [m/s^2]
  double min_accel = -3.5;     ///< [m/s^2]
  double cruise_gain = 0.45;   ///< [1/s] P gain on speed error
  double follow_headway = 1.45; ///< [s] desired time headway (OpenPilot T_FOLLOW)
  double stop_distance = 4.0;  ///< [m] standstill gap
  double gap_gain = 0.06;      ///< [1/s^2] P gain on gap error
  double rel_speed_gain = 0.30;///< [1/s] gain on closing speed
};

/// Output of the planner each cycle.
struct LongitudinalPlan {
  double accel = 0.0;       ///< requested accel [m/s^2]
  bool following = false;   ///< true when the lead constrains the plan
  double desired_gap = 0.0; ///< [m] gap the follow law is regulating to
};

/// Classic ACC: constant-time-gap follow law blended with a cruise speed
/// P controller; the more conservative of the two wins.
class LongitudinalPlanner {
 public:
  explicit LongitudinalPlanner(AccConfig config) noexcept : config_(config) {}

  /// Compute the plan for the current cycle.
  /// @p ego_speed   measured ego speed [m/s]
  /// @p cruise_speed set speed [m/s]
  /// @p lead        smoothed lead estimate
  LongitudinalPlan update(double ego_speed, double cruise_speed,
                          const LeadEstimate& lead) noexcept;

  const AccConfig& config() const noexcept { return config_; }

 private:
  AccConfig config_;
};

}  // namespace scaa::adas
