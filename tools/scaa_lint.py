#!/usr/bin/env python3
"""scaa_lint: repo-specific invariant lint for the scaa tree.

The generic gates (-Wall/-Werror, clang -Wthread-safety, ASan/UBSan, TSan,
clang-tidy) prove memory and lock discipline; this lint enforces the
determinism invariants the paper's campaign statistics rest on, which no
generic tool knows about:

  nondeterminism      No rand()/srand()/std::random_device/time()/getenv()
                      /gettimeofday()/clock_gettime()/clock_nanosleep()
                      outside the blessed RNG-seeding layer (src/util/rng.*),
                      the deadline-clock layer (src/util/deadline_clock.* —
                      the real-time executor's one wall-clock source, which
                      by contract never feeds a clock value into the
                      simulation), and the CLI layer (src/cli/). Every
                      simulation must be a pure function of (scenario,
                      strategy, seed); a stray entropy or wall-clock source
                      in library code silently breaks bit-reproducibility.

  unordered-iteration No iteration over std::unordered_* containers in
                      aggregation / serialization / report paths. Unordered
                      iteration order varies across libstdc++ versions and
                      hash seeds, so a fold or emit loop over one produces
                      run-to-run (or toolchain-to-toolchain) different
                      bytes. Ordered containers or index loops only.

  stray-output        No std::cout / std::cerr / printf-family output in
                      library code. stdout is machine-parsed report/bench
                      output (CLI + report writer only) and stderr belongs
                      to util/logging's serialized sink; anything else
                      corrupts reports or interleaves across threads.

  naked-accumulation  No ad-hoc floating-point accumulation loops in the
                      aggregation paths. Campaign statistics fold through
                      util::RunningStats / exp::AggregateAccumulator (the
                      util/serial-backed types with fixed chunk-order
                      merges); a naked `sum += x` loop reintroduces
                      fold-order-dependent float results.

  fault-entropy       src/fault/ draws every random draw from the
                      injector's forked stream (World stream id 17, handed
                      in by World/reset). Constructing a util::Rng
                      temporary, calling splitmix64(), or reaching for
                      std::<random> machinery inside src/fault/ seeds a
                      second stream, which silently decouples fault
                      firings from the world seed and breaks the
                      fresh-vs-reset / no-plan bit-identity guarantees.

Input is the build tree's compile_commands.json (CMake exports it —
CMAKE_EXPORT_COMPILE_COMMANDS is ON in this repo) plus every header under
src/. Findings print as `path:line: [rule] message` and make the exit code
non-zero; CI gates on it (lint job) and ctest runs it as lint.tree.

Escape hatches, in order of preference:
  1. Fix the code.
  2. A trailing or preceding-line comment `// scaa-lint: allow(<rule>)`
     for a single deliberate site.
  3. A file-level entry in tools/scaa_lint_allowlist.txt
     (`<rule> <path> <one-line justification>`) for a file that is
     wholesale exempt for a stated reason.

`--self-test` checks the rule engine against tests/lint_fixtures/: every
fixture declares its virtual path and the rules it must (or must not)
trigger in a header comment; ctest runs this as lint.self_test.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

RULES = (
    "nondeterminism",
    "unordered-iteration",
    "stray-output",
    "naked-accumulation",
    "fault-entropy",
)

# --- layer classification (repo-relative posix paths) -----------------------

# Blessed entropy/wall-clock layers: the RNG seeding implementation, the
# deadline clock (the real-time executor's pacing source — its clock values
# never enter the simulation), and the CLI (wall-clock timing for bench
# wall_s columns, seeds from argv).
NONDET_BLESSED = ("src/cli/", "src/util/rng.", "src/util/deadline_clock.")

# Paths whose loops feed deterministic aggregates, serialized bytes, or
# report output: the fold-order rules apply here.
FOLD_PATHS = (
    "src/exp/",
    "src/cli/report.",
    "src/util/stats.",
    "src/util/serial.",
    "src/util/table.",
    "src/util/csv.",
    "src/msg/log.",
)

# The accumulator implementations themselves: the one place Welford updates
# and raw moment arithmetic are supposed to live.
ACCUMULATOR_IMPLS = ("src/util/stats.", "src/util/serial.")

# The serialized logging sink: the one legal std::cerr writer.
LOG_SINK = "src/util/logging."

# The fault-injection layer: all of its entropy comes from the one Rng
# World forks for it (stream id 17); it must never seed a stream itself.
FAULT_LAYER = "src/fault/"


def in_layer(path: str, prefixes) -> bool:
    return any(path.startswith(p) for p in prefixes)


# --- source preprocessing ---------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving offsets.

    Every blanked character becomes a space so line/column numbers in the
    stripped text match the original exactly.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            # Raw strings: R"delim( ... )delim"
            if quote == '"' and i > 0 and text[i - 1] == "R" and (
                i < 2 or not (text[i - 2].isalnum() or text[i - 2] == "_")
            ):
                m = re.match(r'"([^ ()\\\n]{0,16})\(', text[i:])
                if m:
                    end = text.find(")" + m.group(1) + '"', i)
                    end = n if end < 0 else end + len(m.group(1)) + 2
                    for j in range(i, min(end, n)):
                        if text[j] != "\n":
                            out[j] = " "
                    i = end
                    continue
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def allowed_lines(raw_lines, rule: str):
    """Line numbers (1-based) suppressed for @p rule by the escape hatch:
    a `// scaa-lint: allow(rule[,rule...])` comment suppresses its own line
    and the line immediately after it."""
    allowed = set()
    hatch = re.compile(r"//\s*scaa-lint:\s*allow\(([^)]*)\)")
    for lineno, line in enumerate(raw_lines, start=1):
        m = hatch.search(line)
        if m and rule in [r.strip() for r in m.group(1).split(",")]:
            allowed.add(lineno)
            allowed.add(lineno + 1)
    return allowed


# --- rule engines -----------------------------------------------------------

# The `>` in the lookbehinds rejects member access (`obj->time()`); the
# identifier/`.` chars reject suffixed names and `.member` calls. libc
# time() always takes an argument (a pointer, possibly null), so requiring
# a non-`)` after the paren skips nullary members named `time` and their
# declarations without missing any real libc call.
NONDET_PATTERNS = (
    (re.compile(r"\b(?:std\s*::\s*)?random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w.>])(?:std\s*::\s*|::\s*)?srand\s*\("), "srand()"),
    (re.compile(r"(?<![\w.>])(?:std\s*::\s*|::\s*)?rand\s*\("), "rand()"),
    (re.compile(r"(?<![\w.>])(?:std\s*::\s*|::\s*)?time\s*\(\s*[^)\s]"),
     "time()"),
    (re.compile(r"(?<![\w.>])(?:std\s*::\s*|::\s*)?getenv\s*\("), "getenv()"),
    (re.compile(r"(?<![\w.>])(?:::\s*)?gettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w.>])(?:::\s*)?clock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"(?<![\w.>])(?:::\s*)?clock_nanosleep\s*\("),
     "clock_nanosleep()"),
)

STRAY_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*cout\b"), "std::cout"),
    (re.compile(r"\bstd\s*::\s*cerr\b"), "std::cerr"),
    (re.compile(r"(?<![\w.:])(?:std\s*::\s*|::\s*)?printf\s*\("), "printf()"),
    (re.compile(r"(?<![\w.:])(?:std\s*::\s*|::\s*)?fprintf\s*\("), "fprintf()"),
    (re.compile(r"(?<![\w.:])(?:std\s*::\s*|::\s*)?puts\s*\("), "puts()"),
    (re.compile(r"(?<![\w.:])(?:std\s*::\s*|::\s*)?putchar\s*\("), "putchar()"),
)

UNORDERED_DECL = re.compile(r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\b")
RANGE_FOR = re.compile(
    r"\bfor\s*\([^;()]*?:\s*([A-Za-z_][\w.>\-]*)\s*\)"
)
# Only begin-family calls: iteration always needs one, while a bare
# .end() is usually a find() sentinel (legitimate O(1) lookup).
BEGIN_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*c?r?begin\s*\(")


def check_nondeterminism(path, stripped, findings):
    if in_layer(path, NONDET_BLESSED):
        return
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        for pattern, what in NONDET_PATTERNS:
            if pattern.search(line):
                findings.append((
                    path, lineno, "nondeterminism",
                    f"{what} in library code: simulations must derive all "
                    f"entropy from util::Rng seeds (blessed layers: "
                    f"{', '.join(NONDET_BLESSED)})",
                ))


def check_stray_output(path, stripped, findings):
    if path.startswith("src/cli/"):
        return
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        for pattern, what in STRAY_PATTERNS:
            if what == "std::cerr" and path.startswith(LOG_SINK):
                continue  # util/logging owns the serialized stderr sink
            if pattern.search(line):
                findings.append((
                    path, lineno, "stray-output",
                    f"{what} in library code: stdout belongs to the report "
                    f"writer and CLI, stderr to util/logging's sink",
                ))


def unordered_identifiers(stripped: str):
    """Names declared in this file with a std::unordered_* type."""
    names = set()
    for m in UNORDERED_DECL.finditer(stripped):
        # Skip the template argument list (angle brackets may nest), then
        # take the next identifier as the declared name.
        i = m.end()
        n = len(stripped)
        while i < n and stripped[i].isspace():
            i += 1
        if i < n and stripped[i] == "<":
            depth = 0
            while i < n:
                if stripped[i] == "<":
                    depth += 1
                elif stripped[i] == ">":
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                i += 1
        ident = re.match(r"\s*&?\s*([A-Za-z_]\w*)", stripped[i:])
        if ident:
            names.add(ident.group(1))
    return names


def check_unordered_iteration(path, stripped, findings):
    if not in_layer(path, FOLD_PATHS):
        return
    names = unordered_identifiers(stripped)
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        hits = set()
        for m in RANGE_FOR.finditer(line):
            base = re.split(r"[.>]|->", m.group(1))[-1] or m.group(1)
            first = re.match(r"[A-Za-z_]\w*", m.group(1))
            if (first and first.group(0) in names) or base in names:
                hits.add(m.group(1))
        for m in BEGIN_CALL.finditer(line):
            if m.group(1) in names:
                hits.add(m.group(1))
        for name in sorted(hits):
            findings.append((
                path, lineno, "unordered-iteration",
                f"iteration over std::unordered_* container '{name}' in a "
                f"deterministic fold/serialization path: unordered order "
                f"varies by hash seed and libstdc++ version; use an ordered "
                f"container or index loop",
            ))


FLOAT_DECL = re.compile(r"\b(?:double|float)\s+(?!.*\()\s*([A-Za-z_]\w*)")
FLOAT_DECL_SIMPLE = re.compile(r"\b(?:double|float)\s+([A-Za-z_]\w*)\s*(?:=|;|\{|,|\))")
LOOP_HEAD = re.compile(r"\b(?:for|while)\s*\(")


def loop_regions(stripped: str):
    """(start_offset, end_offset) of every for/while body, braces matched."""
    regions = []
    for m in LOOP_HEAD.finditer(stripped):
        i, n = m.end() - 1, len(stripped)
        depth = 0
        while i < n:  # skip the (...) head
            if stripped[i] == "(":
                depth += 1
            elif stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    i += 1
                    break
            i += 1
        while i < n and stripped[i].isspace():
            i += 1
        if i >= n:
            continue
        start = i
        if stripped[i] == "{":
            depth = 0
            while i < n:
                if stripped[i] == "{":
                    depth += 1
                elif stripped[i] == "}":
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                i += 1
        else:
            while i < n and stripped[i] != ";":
                i += 1
        regions.append((start, i))
    return regions


def check_naked_accumulation(path, stripped, findings):
    if not in_layer(path, FOLD_PATHS) or in_layer(path, ACCUMULATOR_IMPLS):
        return
    float_names = set(FLOAT_DECL_SIMPLE.findall(stripped))
    if not float_names:
        return
    line_of = [0]
    for off, ch in enumerate(stripped):
        if ch == "\n":
            line_of.append(off + 1)

    def lineno_at(offset):
        lo, hi = 0, len(line_of) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if line_of[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    accum = re.compile(
        r"\b([A-Za-z_]\w*)\s*(?:\+=(?!=)|-=(?!=)|=\s*\1\s*[+\-])"
    )
    seen = set()
    for start, end in loop_regions(stripped):
        for m in accum.finditer(stripped, start, end):
            name = m.group(1)
            if name not in float_names:
                continue
            lineno = lineno_at(m.start())
            if (lineno, name) in seen:
                continue
            seen.add((lineno, name))
            findings.append((
                path, lineno, "naked-accumulation",
                f"floating-point accumulation into '{name}' inside a loop: "
                f"campaign statistics must fold through util::RunningStats / "
                f"exp::AggregateAccumulator (fixed chunk-order merge), not "
                f"ad-hoc sums whose value depends on iteration order",
            ))


# `Rng` directly followed by `(` or `{` is a temporary / unnamed seeded
# construction; a named declaration (`util::Rng rng_{0};`, an `util::Rng rng`
# parameter) has an identifier between the type and the initializer and is
# how the injector legitimately *receives* its forked stream.
FAULT_ENTROPY_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|"
                r"default_random_engine|knuth_b|ranlux\w+|\w+_distribution)\b"),
     "std::<random> machinery"),
    (re.compile(r"\bRng\s*[({]"), "a fresh util::Rng stream"),
    (re.compile(r"\bsplitmix64\s*\("), "splitmix64()"),
)


def check_fault_entropy(path, stripped, findings):
    if not path.startswith(FAULT_LAYER):
        return
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        for pattern, what in FAULT_ENTROPY_PATTERNS:
            if pattern.search(line):
                findings.append((
                    path, lineno, "fault-entropy",
                    f"{what} seeded inside src/fault/: the fault layer must "
                    f"draw all entropy from the injector's forked stream "
                    f"(World stream id 17); a second stream decouples fault "
                    f"firings from the world seed and breaks the "
                    f"fresh-vs-reset bit-identity guarantee",
                ))


CHECKS = {
    "nondeterminism": check_nondeterminism,
    "unordered-iteration": check_unordered_iteration,
    "stray-output": check_stray_output,
    "naked-accumulation": check_naked_accumulation,
    "fault-entropy": check_fault_entropy,
}


def lint_text(path: str, text: str):
    """All findings for one file (path is repo-relative posix)."""
    stripped = strip_comments_and_strings(text)
    raw_lines = text.splitlines()
    findings = []
    for rule, check in CHECKS.items():
        rule_findings = []
        check(path, stripped, rule_findings)
        allowed = allowed_lines(raw_lines, rule) if rule_findings else set()
        for f in rule_findings:
            if f[1] not in allowed:
                findings.append(f)
    findings.sort(key=lambda f: (f[0], f[1], f[2]))
    return findings


# --- allowlist --------------------------------------------------------------

def load_allowlist(path: Path):
    """{(rule, repo-relative-path)} entries; missing file means empty."""
    entries = {}
    if not path.exists():
        return entries
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) < 3:
            sys.exit(f"{path}:{lineno}: allowlist entry needs "
                     f"'<rule> <path> <justification>': {line!r}")
        rule, file_path, justification = parts
        if rule not in RULES:
            sys.exit(f"{path}:{lineno}: unknown rule {rule!r} "
                     f"(known: {', '.join(RULES)})")
        entries[(rule, file_path)] = justification
    return entries


# --- file discovery ---------------------------------------------------------

def discover_files(root: Path, compile_commands: Path | None):
    """Repo-relative paths to lint: every src/ TU named in
    compile_commands.json plus every header under src/."""
    files = set()
    if compile_commands is not None:
        try:
            entries = json.loads(compile_commands.read_text())
        except (OSError, json.JSONDecodeError) as e:
            sys.exit(f"scaa_lint: cannot read {compile_commands}: {e}")
        for entry in entries:
            p = Path(entry["file"])
            if not p.is_absolute():
                p = (Path(entry["directory"]) / p).resolve()
            try:
                rel = p.resolve().relative_to(root.resolve())
            except ValueError:
                continue  # external TU (e.g. gtest) — not ours to lint
            if rel.as_posix().startswith("src/"):
                files.add(rel.as_posix())
    for header in (root / "src").rglob("*.hpp"):
        files.add(header.relative_to(root).as_posix())
    return sorted(files)


# --- self-test over fixtures ------------------------------------------------

FIXTURE_HEADER = re.compile(
    r"//\s*scaa-lint-fixture:\s*as=(\S+)\s+expect=(\S+)"
)


def self_test(fixtures_dir: Path, verbose: bool) -> int:
    if not fixtures_dir.is_dir():
        print(f"scaa_lint --self-test: fixture directory {fixtures_dir} "
              f"missing", file=sys.stderr)
        return 1
    failures = 0
    seen_trigger = set()  # rules with >=1 must-trigger fixture
    seen_clean = set()    # rules with >=1 in-scope clean fixture
    fixtures = sorted(fixtures_dir.glob("*.cpp")) + sorted(
        fixtures_dir.glob("*.hpp"))
    if not fixtures:
        print(f"scaa_lint --self-test: no fixtures in {fixtures_dir}",
              file=sys.stderr)
        return 1
    for fixture in fixtures:
        text = fixture.read_text()
        m = FIXTURE_HEADER.search(text)
        if not m:
            print(f"FAIL {fixture.name}: missing "
                  f"'// scaa-lint-fixture: as=<path> expect=<rules|none>'")
            failures += 1
            continue
        virtual_path, expect = m.group(1), m.group(2)
        expected = set() if expect == "none" else set(expect.split(","))
        unknown = expected - set(RULES)
        if unknown:
            print(f"FAIL {fixture.name}: unknown rule(s) {sorted(unknown)}")
            failures += 1
            continue
        triggered = {f[2] for f in lint_text(virtual_path, text)}
        if triggered == expected:
            if verbose:
                print(f"PASS {fixture.name} ({expect})")
            seen_trigger |= expected
            if not expected:
                # A clean twin covers every rule its virtual path is
                # subject to.
                for rule in RULES:
                    probe = []
                    CHECKS[rule]  # rule exists
                    if rule == "nondeterminism" and not in_layer(
                            virtual_path, NONDET_BLESSED):
                        probe.append(rule)
                    if rule == "stray-output" and not virtual_path.startswith(
                            "src/cli/"):
                        probe.append(rule)
                    if rule in ("unordered-iteration", "naked-accumulation") \
                            and in_layer(virtual_path, FOLD_PATHS):
                        probe.append(rule)
                    if rule == "fault-entropy" and virtual_path.startswith(
                            FAULT_LAYER):
                        probe.append(rule)
                    seen_clean |= set(probe)
        else:
            print(f"FAIL {fixture.name}: expected {sorted(expected) or 'none'}"
                  f", triggered {sorted(triggered) or 'none'}")
            failures += 1
    for rule in RULES:
        if rule not in seen_trigger:
            print(f"FAIL coverage: no fixture triggers rule '{rule}'")
            failures += 1
        if rule not in seen_clean:
            print(f"FAIL coverage: no clean fixture in scope of rule '{rule}'")
            failures += 1
    total = len(fixtures)
    if failures:
        print(f"scaa_lint --self-test: {failures} failure(s) over {total} "
              f"fixtures")
        return 1
    print(f"scaa_lint --self-test: {total} fixtures OK, all {len(RULES)} "
          f"rules covered (trigger + clean)")
    return 0


# --- main -------------------------------------------------------------------

def main() -> int:
    parser = argparse.ArgumentParser(
        description="scaa invariant lint (determinism & output discipline)")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="build/compile_commands.json (from CMake); "
                             "omit to lint every src/ file by glob")
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="check the rule engine against "
                             "tests/lint_fixtures/ and exit")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args()

    script_dir = Path(__file__).resolve().parent
    root = (args.root or script_dir.parent).resolve()

    if args.self_test:
        return self_test(root / "tests" / "lint_fixtures", args.verbose)

    compile_commands = args.compile_commands
    if compile_commands is None:
        files = sorted(
            p.relative_to(root).as_posix()
            for suffix in ("*.cpp", "*.hpp")
            for p in (root / "src").rglob(suffix))
    else:
        files = discover_files(root, compile_commands)
        if not any(f.endswith(".cpp") for f in files):
            sys.exit(f"scaa_lint: no src/ translation units found via "
                     f"{compile_commands} — wrong build directory?")

    allowlist = load_allowlist(script_dir / "scaa_lint_allowlist.txt")
    used_allowlist = set()
    findings = []
    for rel in files:
        text = (root / rel).read_text()
        for f in lint_text(rel, text):
            key = (f[2], f[0])
            if key in allowlist:
                used_allowlist.add(key)
                continue
            findings.append(f)

    for path, lineno, rule, message in findings:
        print(f"{path}:{lineno}: [{rule}] {message}")

    stale = set(allowlist) - used_allowlist
    for rule, path in sorted(stale):
        print(f"tools/scaa_lint_allowlist.txt: stale entry ({rule}, {path}): "
              f"no finding suppressed — remove it", file=sys.stderr)

    if findings or stale:
        print(f"scaa_lint: {len(findings)} finding(s), {len(stale)} stale "
              f"allowlist entr{'y' if len(stale) == 1 else 'ies'} over "
              f"{len(files)} files", file=sys.stderr)
        return 1
    if args.verbose:
        for f in files:
            print(f"clean {f}")
    print(f"scaa_lint: {len(files)} files clean "
          f"({len(used_allowlist)} allowlist suppression(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
