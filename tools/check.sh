#!/usr/bin/env bash
# One-command local run of the static gates, mirroring the CI lint job:
#
#   tools/check.sh [build-dir]
#
#   1. configure (if needed) so compile_commands.json exists
#   2. scaa_lint --self-test   (rule engine vs tests/lint_fixtures/)
#   3. scaa_lint over the tree (via compile_commands.json)
#   4. clang-tidy over the tree, if run-clang-tidy is installed
#      (skipped with a note otherwise — the CI lint job always runs it)
#
# Exit is non-zero on any finding. Escape hatches, in order of preference:
# fix the code; `// scaa-lint: allow(<rule>)` at a single deliberate site;
# a justified file-level entry in tools/scaa_lint_allowlist.txt.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "check.sh: configuring ${build_dir} (compile_commands.json missing)"
  cmake -S "${repo_root}" -B "${build_dir}" >/dev/null
fi

echo "== scaa_lint --self-test =="
python3 "${repo_root}/tools/scaa_lint.py" --self-test

echo "== scaa_lint (tree) =="
python3 "${repo_root}/tools/scaa_lint.py" \
  --compile-commands "${build_dir}/compile_commands.json"

if command -v run-clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  run-clang-tidy -p "${build_dir}" -quiet "${repo_root}/src/"
else
  echo "== clang-tidy: run-clang-tidy not installed, skipped (CI runs it) =="
fi

echo "check.sh: all gates passed"
