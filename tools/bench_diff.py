#!/usr/bin/env python3
"""Diff of benchmark trajectory points.

Usage: bench_diff.py [--strict] BASELINE FRESH [BASELINE FRESH ...]

Each argument pair is a committed BENCH_*.json baseline and a freshly
emitted copy (scaa_campaign bench --format json). For every row (keyed by
the first column: strategy or slice) the script prints the wall-clock /
throughput delta, and flags any difference in the integer aggregate columns
— those are seed-for-seed deterministic, so a change there is a behavioral
regression, not timing noise.

BENCH_table4.json also carries kernel rows ("Polyline::project" and
"PubSubBus::publish"): there "simulations" is the fixed operation count
and sims_per_s the kernel throughput (projections/s, publishes/s). The
deterministic-column check applies to them unchanged — the op count
drifting means the benchmark workload changed. "PubSubBus::publish" times
the zero-copy typed dispatch path (six Latest latches, no raw tap) over
the steady-state publish mix; bench_step's bus_publish_typed/tapped/
legacy rows carry the same workload against the in-bench legacy bus.

Timing columns (wall_s, throughput, parallel efficiency) NEVER gate:
shared CI runners make them too noisy. Without --strict the script always
exits 0 and the output lands in the benchmark artifact for human review.
With --strict it exits 1 when a deterministic column drifts or a baseline
row goes missing — those are code regressions, not noise — while NEW ROW
(a row the baseline predates) stays a warning so adding a benchmark does
not require a lockstep baseline update. Rows in NONDETERMINISTIC_ROWS
(realtime_jitter: deadline-clock latency/jitter/overruns, all scheduler-
dependent) are printed but never gate, even under --strict.
"""

import json
import sys

TIMING_COLUMNS = {"wall_s", "sims_per_s", "points_per_s", "efficiency"}

# Rows measuring an isolated kernel rather than a campaign slice, annotated
# so a reader of the artifact does not misread ops/s as simulations/s.
KERNEL_ROWS = {"Polyline::project", "PubSubBus::publish", "World::reset"}

# Rows that run a campaign slice with benign fault injection attached (the
# faults row: the attack-free grid under a mid-intensity CAN-drop plan).
# Their aggregate columns are seed-for-seed deterministic and gate exactly
# like the strategy rows; the annotation just tells the artifact reader the
# numbers are expected to differ from the fault-free None row.
FAULT_ROWS = {"faults"}

# Rows whose every column is scheduler-dependent (the realtime_jitter row
# reuses the integer aggregate columns for overrun counts and the float
# columns for latency/jitter microseconds — all of it moves with machine
# load). The whole row is advisory: printed, never gating, even --strict.
NONDETERMINISTIC_ROWS = {"realtime_jitter"}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"  [skip] cannot load {path}: {exc}")
        return None


def diff_pair(baseline_path, fresh_path):
    """Print the diff; return the number of gating (deterministic) failures."""
    print(f"== {baseline_path} vs {fresh_path}")
    baseline = load(baseline_path)
    fresh = load(fresh_path)
    if baseline is None or fresh is None:
        return 1
    failures = 0
    key = baseline["columns"][0]
    base_rows = {row[key]: row for row in baseline["rows"]}
    for row in fresh["rows"]:
        name = row[key]
        base = base_rows.get(name)
        if base is None:
            print(f"  {name}: NEW ROW (not in committed baseline)")
            continue
        deltas = []
        drift = []
        advisory = name in NONDETERMINISTIC_ROWS
        for col, value in row.items():
            if col == key or col not in base:
                continue
            if col in TIMING_COLUMNS or advisory:
                if isinstance(value, (int, float)) and isinstance(base[col], (int, float)):
                    # Always print the pair; a 0.0 baseline only suppresses
                    # the percentage (division), never the comparison.
                    pct = f" ({100.0 * (value - base[col]) / base[col]:+.1f}%)" if base[col] else ""
                    deltas.append(f"{col} {base[col]:.3f} -> {value:.3f}{pct}")
            elif base[col] != value:
                drift.append(f"{col} {base[col]} -> {value}")
        line = "; ".join(deltas) if deltas else "no timing columns"
        tag = " [kernel row: ops and ops/s]" if name in KERNEL_ROWS else ""
        if name in FAULT_ROWS:
            tag += " [fault-injection row: aggregates still gate]"
        if advisory:
            tag += " [nondeterministic row: advisory only]"
        print(f"  {name}: {line}{tag}")
        if drift:
            print(f"  {name}: DETERMINISTIC COLUMNS DIFFER: {'; '.join(drift)}")
            failures += 1
    for name in base_rows:
        if not any(row[key] == name for row in fresh["rows"]):
            print(f"  {name}: MISSING from fresh run")
            failures += 1
    return failures


def main(argv):
    strict = False
    if argv and argv[0] == "--strict":
        strict = True
        argv = argv[1:]
    if len(argv) < 2 or len(argv) % 2 != 0:
        print(__doc__)
        return 0
    failures = 0
    for i in range(0, len(argv), 2):
        failures += diff_pair(argv[i], argv[i + 1])
    if failures and strict:
        print(f"bench_diff: {failures} deterministic failure(s) (--strict)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
