#!/usr/bin/env bash
# Multi-process shard orchestration smoke test.
#
# Usage: shard_smoke.sh SCAA_CAMPAIGN_BIN WORKDIR [--kill]
# Env:   REPS (default 1), SEED (default 2022), SHARDS (default 4)
#
# Runs the table4 campaign three ways and asserts all outputs are
# byte-identical:
#   1. single process (the reference),
#   2. sharded coordinator with SHARDS forked workers — with --kill, one
#      worker is SIGKILLed mid-run, the coordinator must exit non-zero,
#      and a --resume rerun finishes from the fsync'd chunks,
#   3. `scaa_campaign merge` folding the per-shard checkpoint slices.
# The merged report is additionally diffed with bench_diff.py --strict,
# which exits non-zero on any deterministic-column drift.
set -euo pipefail

BIN=${1:?usage: shard_smoke.sh SCAA_CAMPAIGN_BIN WORKDIR [--kill]}
WORK=${2:?usage: shard_smoke.sh SCAA_CAMPAIGN_BIN WORKDIR [--kill]}
KILL=${3:-}
REPS=${REPS:-1}
SEED=${SEED:-2022}
SHARDS=${SHARDS:-4}
TOOLS_DIR=$(cd "$(dirname "$0")" && pwd)

rm -rf "$WORK"
mkdir -p "$WORK"
COMMON=(table4 --reps "$REPS" --seed "$SEED" --format json)

echo "shard_smoke: single-process reference (reps=$REPS seed=$SEED)"
"$BIN" "${COMMON[@]}" --out "$WORK/ref.json" >/dev/null

if [ "$KILL" = "--kill" ]; then
  echo "shard_smoke: coordinator with $SHARDS workers, SIGKILLing one mid-run"
  set +e
  "$BIN" "${COMMON[@]}" --shards "$SHARDS" --checkpoint "$WORK/ck" \
    --out "$WORK/sharded.json" >"$WORK/coord.out" 2>"$WORK/coord.err" &
  COORD=$!
  # Give the coordinator time to fork, then kill whichever worker is still
  # alive. On a fast machine every worker may already have finished — then
  # there is nothing to kill and the run legitimately succeeds.
  sleep 0.5
  VICTIM=$(pgrep -P "$COORD" 2>/dev/null | head -n 1 || true)
  if [ -n "$VICTIM" ]; then
    kill -KILL "$VICTIM"
  fi
  wait "$COORD"
  STATUS=$?
  set -e
  if [ -n "$VICTIM" ]; then
    if [ "$STATUS" -eq 0 ]; then
      echo "shard_smoke: FAIL — coordinator exited 0 after worker SIGKILL" >&2
      exit 1
    fi
    echo "shard_smoke: coordinator failed as expected (status $STATUS)," \
         "resuming from checkpoints"
  else
    echo "shard_smoke: workers finished before the kill; continuing"
  fi
  "$BIN" "${COMMON[@]}" --shards "$SHARDS" --checkpoint "$WORK/ck" --resume \
    --out "$WORK/sharded.json" >/dev/null
else
  echo "shard_smoke: coordinator with $SHARDS workers"
  "$BIN" "${COMMON[@]}" --shards "$SHARDS" --checkpoint "$WORK/ck" \
    --out "$WORK/sharded.json" >/dev/null
fi

cmp "$WORK/ref.json" "$WORK/sharded.json"
echo "shard_smoke: sharded output byte-identical to single process"

"$BIN" merge --reps "$REPS" --seed "$SEED" --format json \
  --shards "$SHARDS" --checkpoint "$WORK/ck" \
  --out "$WORK/merged.json" >/dev/null
cmp "$WORK/ref.json" "$WORK/merged.json"
echo "shard_smoke: merge subcommand output byte-identical to single process"

if command -v python3 >/dev/null 2>&1; then
  python3 "$TOOLS_DIR/bench_diff.py" --strict \
    "$WORK/ref.json" "$WORK/merged.json"
else
  echo "shard_smoke: python3 not found; skipping bench_diff --strict check"
fi

echo "shard_smoke: OK"
