#!/usr/bin/env bash
# Multi-process shard orchestration smoke test.
#
# Usage: shard_smoke.sh SCAA_CAMPAIGN_BIN WORKDIR [--kill]
# Env:   REPS (default 1), SEED (default 2022), SHARDS (default 4)
#
# Runs the table4 campaign three ways and asserts all outputs are
# byte-identical:
#   1. single process (the reference),
#   2. sharded coordinator with SHARDS forked workers — with --kill, one
#      worker is SIGKILLed mid-run, the coordinator must exit non-zero,
#      and a --resume rerun finishes from the fsync'd chunks; --kill also
#      runs a kill-COORDINATOR case (SIGTERM to the coordinator itself):
#      it must forward the signal, reap every worker (no orphans holding
#      slice flocks), and leave the checkpoint immediately resumable,
#   3. `scaa_campaign merge` folding the per-shard checkpoint slices.
# The merged report is additionally diffed with bench_diff.py --strict,
# which exits non-zero on any deterministic-column drift. A final case
# splices a slice written under a fault-injection plan (`scaa_campaign
# faults --fault-plan ...`) over one fault-free shard slice and asserts
# the merge refuses the mix with a fingerprint mismatch — fault plans are
# folded into the grid fingerprint exactly so mixed-provenance merges die
# loudly instead of averaging faulted and fault-free statistics.
set -euo pipefail

BIN=${1:?usage: shard_smoke.sh SCAA_CAMPAIGN_BIN WORKDIR [--kill]}
WORK=${2:?usage: shard_smoke.sh SCAA_CAMPAIGN_BIN WORKDIR [--kill]}
KILL=${3:-}
REPS=${REPS:-1}
SEED=${SEED:-2022}
SHARDS=${SHARDS:-4}
TOOLS_DIR=$(cd "$(dirname "$0")" && pwd)

rm -rf "$WORK"
mkdir -p "$WORK"
COMMON=(table4 --reps "$REPS" --seed "$SEED" --format json)

echo "shard_smoke: single-process reference (reps=$REPS seed=$SEED)"
"$BIN" "${COMMON[@]}" --out "$WORK/ref.json" >/dev/null

if [ "$KILL" = "--kill" ]; then
  echo "shard_smoke: coordinator with $SHARDS workers, SIGKILLing one mid-run"
  set +e
  "$BIN" "${COMMON[@]}" --shards "$SHARDS" --checkpoint "$WORK/ck" \
    --out "$WORK/sharded.json" >"$WORK/coord.out" 2>"$WORK/coord.err" &
  COORD=$!
  # Give the coordinator time to fork, then kill whichever worker is still
  # alive. On a fast machine every worker may already have finished — then
  # there is nothing to kill and the run legitimately succeeds.
  sleep 0.5
  VICTIM=$(pgrep -P "$COORD" 2>/dev/null | head -n 1 || true)
  if [ -n "$VICTIM" ]; then
    kill -KILL "$VICTIM"
  fi
  wait "$COORD"
  STATUS=$?
  set -e
  if [ -n "$VICTIM" ]; then
    if [ "$STATUS" -eq 0 ]; then
      echo "shard_smoke: FAIL — coordinator exited 0 after worker SIGKILL" >&2
      exit 1
    fi
    echo "shard_smoke: coordinator failed as expected (status $STATUS)," \
         "resuming from checkpoints"
  else
    echo "shard_smoke: workers finished before the kill; continuing"
  fi
  "$BIN" "${COMMON[@]}" --shards "$SHARDS" --checkpoint "$WORK/ck" --resume \
    --out "$WORK/sharded.json" >/dev/null

  echo "shard_smoke: coordinator-kill case — SIGTERM to the coordinator"
  # Fresh checkpoint stem: the point of this case is that after SIGTERM the
  # coordinator forwards the signal, reaps every worker, and releases the
  # slice flocks so an IMMEDIATE --resume succeeds (no orphan holds a lock).
  set +e
  "$BIN" "${COMMON[@]}" --shards "$SHARDS" --checkpoint "$WORK/ck_term" \
    --out "$WORK/sharded_term.json" \
    >"$WORK/coord_term.out" 2>"$WORK/coord_term.err" &
  COORD=$!
  sleep 0.5
  kill -TERM "$COORD" 2>/dev/null
  TERM_SENT=$?
  wait "$COORD"
  STATUS=$?
  set -e
  if [ "$TERM_SENT" -eq 0 ]; then
    # Workers are fork-without-exec, so they share the coordinator's argv
    # (which names the unique ck_term stem): any survivor shows up here.
    # This assertion holds whether the coordinator aborted or won the race
    # and finished — either way nothing may be left holding slice flocks.
    ORPHANS=$(pgrep -f "$WORK/ck_term" 2>/dev/null || true)
    if [ -n "$ORPHANS" ]; then
      echo "shard_smoke: FAIL — orphaned workers after coordinator" \
           "SIGTERM: $ORPHANS" >&2
      exit 1
    fi
    if [ "$STATUS" -eq 0 ]; then
      # SIGTERM landed in the shutdown window after the interrupt check:
      # the run completed cleanly, nothing was orphaned. Benign race.
      echo "shard_smoke: coordinator completed before acting on SIGTERM;" \
           "continuing"
    else
      if ! grep -q "resume" "$WORK/coord_term.err"; then
        echo "shard_smoke: FAIL — coordinator error lacks a --resume hint:" >&2
        cat "$WORK/coord_term.err" >&2
        exit 1
      fi
      echo "shard_smoke: coordinator failed as expected (status $STATUS)," \
           "all workers reaped; resuming immediately"
    fi
  else
    echo "shard_smoke: coordinator finished before the SIGTERM; continuing"
  fi
  # Immediate resume: must not trip over stale slice locks.
  "$BIN" "${COMMON[@]}" --shards "$SHARDS" --checkpoint "$WORK/ck_term" \
    --resume --out "$WORK/sharded_term.json" >/dev/null
  cmp "$WORK/ref.json" "$WORK/sharded_term.json"
  echo "shard_smoke: post-SIGTERM resumed output byte-identical to reference"
else
  echo "shard_smoke: coordinator with $SHARDS workers"
  "$BIN" "${COMMON[@]}" --shards "$SHARDS" --checkpoint "$WORK/ck" \
    --out "$WORK/sharded.json" >/dev/null
fi

cmp "$WORK/ref.json" "$WORK/sharded.json"
echo "shard_smoke: sharded output byte-identical to single process"

"$BIN" merge --reps "$REPS" --seed "$SEED" --format json \
  --shards "$SHARDS" --checkpoint "$WORK/ck" \
  --out "$WORK/merged.json" >/dev/null
cmp "$WORK/ref.json" "$WORK/merged.json"
echo "shard_smoke: merge subcommand output byte-identical to single process"

if command -v python3 >/dev/null 2>&1; then
  python3 "$TOOLS_DIR/bench_diff.py" --strict \
    "$WORK/ref.json" "$WORK/merged.json"
else
  echo "shard_smoke: python3 not found; skipping bench_diff --strict check"
fi

echo "shard_smoke: foreign fault-plan slice must be rejected by merge"
cat > "$WORK/benign_plan.txt" <<'EOF'
can_drop rate=0.05
EOF
"$BIN" faults --fault-plan "$WORK/benign_plan.txt" --reps "$REPS" \
  --seed "$SEED" --format json --checkpoint "$WORK/ck_fault" \
  --out "$WORK/faults.json" >/dev/null
# The faulted benign leg reuses table4's None grid (same seeds, same shape,
# same chunking); only the attached FaultPlan differs, so its slice file is
# compatible in every way EXCEPT the grid fingerprint in the header. Splice
# it over one shard slice of the fault-free None row: the merge must refuse
# to fold faulted chunks into a fault-free campaign.
TARGET=$(ls "$WORK"/ck.table4-no-attacks-*".s1of$SHARDS" | head -n 1)
cp "$WORK"/ck_fault.faults-custom-plan-benign-* "$TARGET"
set +e
"$BIN" merge --reps "$REPS" --seed "$SEED" --format json \
  --shards "$SHARDS" --checkpoint "$WORK/ck" \
  --out "$WORK/merged_bad.json" >/dev/null 2>"$WORK/merge_bad.err"
STATUS=$?
set -e
if [ "$STATUS" -eq 0 ]; then
  echo "shard_smoke: FAIL — merge accepted a slice written under a" \
       "different fault plan" >&2
  exit 1
fi
if ! grep -qi "fingerprint" "$WORK/merge_bad.err"; then
  echo "shard_smoke: FAIL — merge rejection does not mention the" \
       "fingerprint mismatch:" >&2
  cat "$WORK/merge_bad.err" >&2
  exit 1
fi
echo "shard_smoke: merge rejected the foreign fault-plan slice" \
     "(status $STATUS, fingerprint mismatch)"

echo "shard_smoke: OK"
